"""Ablations of the G2G design choices (DESIGN.md §6).

The paper motivates several constants without sweeping them; these
ablations regenerate the trade-offs:

* **relay fanout** — the give-2 rule: cost/success as the cap varies;
* **Δ2 / Δ1** — detection rate vs how long relays must keep proofs;
* **quality timeframe** — liar detectability vs frame length (the
  destination can only verify declarations within its two retained
  completed frames);
* **blacklist propagation** — instant broadcast (the paper's
  assumption) vs contact-time gossip.
"""

from __future__ import annotations

from typing import Dict, Optional

from .catalog import protocol
from .parallel import ExecutionOptions
from .runner import FigureData, ReplicationPlan, Series, run_point

#: Default trace for ablations (the denser one resolves differences
#: with fewer seeds).
DEFAULT_TRACE = "infocom05"


def fanout_sweep(
    caps=(1, 2, 3, 4),
    trace_name: str = DEFAULT_TRACE,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> FigureData:
    """Success % and cost of G2G Epidemic as the relay cap varies."""
    if plan is None:
        plan = ReplicationPlan.make(quick=True)
    family, factory = protocol("g2g_epidemic")
    success = Series(label="Delivery %")
    cost = Series(label="Cost (replicas)")
    for cap in caps:
        point = run_point(
            trace_name,
            family,
            factory,
            plan=plan,
            config_overrides={"relay_fanout": cap},
            options=options,
        )
        success.add(cap, point.success_percent)
        cost.add(cap, point.cost)
    return FigureData(
        figure_id=f"ablation-fanout-{trace_name}",
        title="Give-2 rule ablation: relay cap vs delivery and cost",
        x_label="relay fanout cap",
        y_label="Delivery % / replicas",
        series=[success, cost],
    )


def delta2_sweep(
    factors=(1.25, 1.5, 2.0, 3.0),
    trace_name: str = DEFAULT_TRACE,
    droppers: int = 10,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> FigureData:
    """Dropper detection rate in G2G Epidemic as Δ2/Δ1 varies.

    The paper sets Δ2 = 2Δ1 and reports >90% detection; shrinking the
    window trades detection for relay-side memory.
    """
    if plan is None:
        plan = ReplicationPlan.make(quick=True)
    family, factory = protocol("g2g_epidemic")
    series = Series(label="Detection rate %")
    for factor in factors:
        point = run_point(
            trace_name,
            family,
            factory,
            deviation="dropper",
            deviation_count=droppers,
            plan=plan,
            config_overrides={"delta2_factor": factor},
            options=options,
        )
        series.add(factor, 100.0 * point.detection_rate)
    return FigureData(
        figure_id=f"ablation-delta2-{trace_name}",
        title="Δ2/Δ1 ablation: test window vs dropper detection",
        x_label="Δ2 / Δ1",
        y_label="Detection rate %",
        series=[series],
    )


def timeframe_sweep(
    timeframes=(10 * 60.0, 34 * 60.0, 60 * 60.0, 120 * 60.0),
    trace_name: str = DEFAULT_TRACE,
    liars: int = 10,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> FigureData:
    """Liar detection in G2G Delegation as the quality frame varies.

    Too short a frame and deliveries outlive the destination's two
    retained snapshots (declarations become unverifiable); too long
    and the first frame never completes within the run.
    """
    if plan is None:
        plan = ReplicationPlan.make(quick=True)
    family, factory = protocol("g2g_delegation_last_contact")
    series = Series(label="Detection rate %")
    for timeframe in timeframes:
        point = run_point(
            trace_name,
            family,
            factory,
            deviation="liar",
            deviation_count=liars,
            plan=plan,
            config_overrides={"quality_timeframe": timeframe},
            options=options,
        )
        series.add(timeframe / 60.0, 100.0 * point.detection_rate)
    return FigureData(
        figure_id=f"ablation-timeframe-{trace_name}",
        title="Quality-timeframe ablation: frame length vs liar detection",
        x_label="timeframe (minutes)",
        y_label="Detection rate %",
        series=[series],
    )


def buffer_capacity_sweep(
    capacities=(5, 10, 20, 40, None),
    trace_name: str = DEFAULT_TRACE,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> FigureData:
    """Finite-buffer ablation: delivery and false convictions vs capacity.

    The paper assumes infinite buffers.  Under memory pressure an
    honest G2G relay may evict a body it still owes a storage proof
    for — and get convicted despite playing faithfully.  This sweep
    measures both the delivery cost and that false-conviction rate as
    the per-node buffer shrinks (all nodes honest).
    """
    if plan is None:
        plan = ReplicationPlan.make(quick=True)
    family, factory = protocol("g2g_epidemic")
    delivery = Series(label="Delivery %")
    false_convictions = Series(label="Honest nodes convicted")
    for capacity in capacities:
        point = run_point(
            trace_name,
            family,
            factory,
            plan=plan,
            config_overrides={"buffer_capacity": capacity},
            options=options,
        )
        x = float(capacity) if capacity is not None else 0.0  # 0 = infinite
        delivery.add(x, point.success_percent)
        n_runs = max(1, len(point.runs))
        convicted = sum(
            len(run.detected_offenders()) for run in point.runs
        ) / n_runs
        false_convictions.add(x, convicted)
    return FigureData(
        figure_id=f"ablation-buffer-{trace_name}",
        title=(
            "Finite-buffer ablation: capacity vs delivery and false "
            "convictions (x=0 means unbounded)"
        ),
        x_label="buffer capacity (bodies)",
        y_label="Delivery % / convicted honest nodes",
        series=[delivery, false_convictions],
    )


def testers_comparison(
    trace_name: str = DEFAULT_TRACE,
    droppers: int = 10,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, float]:
    """Who audits: the paper's source-only tests vs every-giver tests.

    Source-only testing is what makes auditing incentive-compatible
    (only the sender cares).  The ``any_giver`` variant — every relay
    audits its own takers — is *not* a Nash equilibrium but bounds how
    much detection speed the paper's design gives up.  Restricted to
    droppers: under every-giver auditing a cheating giver's corrupted
    label would let it frame an honest taker, one more reason the
    paper keeps tests at the source.
    """
    from ..core.g2g_epidemic import G2GEpidemicForwarding

    if plan is None:
        plan = ReplicationPlan.make(quick=True)
    out: Dict[str, float] = {}
    for mode in ("source", "any_giver"):
        point = run_point(
            trace_name,
            "epidemic",
            lambda mode=mode: G2GEpidemicForwarding(testers=mode),
            deviation="dropper",
            deviation_count=droppers,
            plan=plan,
            options=options,
        )
        out[f"{mode}_detection_rate"] = point.detection_rate
        out[f"{mode}_detection_minutes"] = point.detection_delay / 60.0
        tests = sum(r.test_phases for r in point.runs) / max(
            1, len(point.runs)
        )
        out[f"{mode}_test_phases"] = tests
    return out


def blacklist_comparison(
    trace_name: str = DEFAULT_TRACE,
    droppers: int = 10,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, float]:
    """Dropper detection with instant broadcast vs gossip dissemination.

    Detection (PoM creation) is detector-local, so rates match; the
    difference gossip makes is how fast the *rest* of the network
    learns — captured here by the conviction metrics staying equal
    while the gossip run keeps convicted nodes participating with
    not-yet-informed peers.
    """
    if plan is None:
        plan = ReplicationPlan.make(quick=True)
    family, factory = protocol("g2g_epidemic")
    out: Dict[str, float] = {}
    for label, instant in (("instant", True), ("gossip", False)):
        point = run_point(
            trace_name,
            family,
            factory,
            deviation="dropper",
            deviation_count=droppers,
            plan=plan,
            config_overrides={"instant_blacklist": instant},
            options=options,
        )
        out[f"{label}_detection_rate"] = point.detection_rate
        out[f"{label}_detection_minutes"] = point.detection_delay / 60.0
        out[f"{label}_success_percent"] = point.success_percent
    return out
