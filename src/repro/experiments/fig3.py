"""Figure 3: effect of message droppers on Epidemic Forwarding.

The paper's Fig. 3 plots vanilla Epidemic delivery % against the
number of droppers (plain and with-outsiders) on both traces, showing
performance collapsing toward ~50% as everyone defects: "when all the
nodes are droppers, the only hope for success is that the sender gets
personally in contact with the destination."
"""

from __future__ import annotations

from typing import Dict, Optional

from .catalog import protocol
from .parallel import ExecutionOptions
from .runner import FigureData, ReplicationPlan, Series, run_series
from .setting import TRACES, adversary_counts

#: The two plotted selfishness variants.
VARIANTS = ("dropper", "dropper_with_outsiders")
VARIANT_LABELS = {
    "dropper": "Droppers",
    "dropper_with_outsiders": "Droppers with outsiders",
}


def run(
    quick: bool = False,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, FigureData]:
    """Reproduce Fig. 3; one :class:`FigureData` per trace."""
    if plan is None:
        plan = ReplicationPlan.make(quick)
    family, factory = protocol("epidemic")
    figures: Dict[str, FigureData] = {}
    for trace_name in TRACES:
        figure = FigureData(
            figure_id=f"fig3-{trace_name}",
            title=f"Effect of message droppers on Epidemic ({trace_name})",
            x_label="Droppers Number",
            y_label="Delivery %",
        )
        for variant in VARIANTS:
            series = Series(label=VARIANT_LABELS[variant])
            for count, point in run_series(
                trace_name,
                family,
                factory,
                adversary_counts(trace_name, quick),
                deviation=variant,
                plan=plan,
                options=options,
            ):
                series.add(count, point.success_percent)
            figure.series.append(series)
        figures[trace_name] = figure
    return figures
