"""Resumable parameter sweeps with per-run archival.

The figure modules run their grids in memory; for *long* campaigns
(full paper grids, many seeds, parameter studies) you want each run
archived as JSON the moment it finishes, and an interrupted sweep to
resume where it stopped.  :class:`SweepRunner` provides exactly that:

* a sweep is a list of :class:`RunSpec` grid points;
* each completed run is written to
  ``<archive>/<sweep>/<spec_id>.json`` via
  :mod:`repro.sim.serialize`;
* re-running the sweep skips specs whose archive file exists
  (delete files to force re-runs);
* :meth:`SweepRunner.collect` loads everything back for analysis.

Example::

    runner = SweepRunner(archive_dir="runs", sweep="dropper-grid")
    specs = [
        RunSpec(trace="infocom05", protocol="g2g_epidemic",
                deviation="dropper", count=c, seed=s)
        for c in (0, 10, 20, 30, 40) for s in (1, 2, 3)
    ]
    runner.run_all(specs)
    frame = runner.collect()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..adversaries.factory import strategy_population
from ..sim.engine import Simulation
from ..sim.results import SimulationResults
from ..sim.serialize import load_results, save_results
from ..sim.config import config_for
from .catalog import protocol
from .parallel import ExecutionOptions, RunRequest, run_requests
from .setting import evaluation_community, evaluation_trace

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RunSpec:
    """One grid point of a sweep.

    Attributes:
        trace: "infocom05" or "cambridge06".
        protocol: a name from :data:`repro.experiments.catalog.PROTOCOLS`.
        seed: replication seed.
        deviation: adversary kind, or None.
        count: number of deviating nodes.
        overrides: frozen (key, value) pairs of SimulationConfig
            overrides — a tuple so the spec stays hashable.
    """

    trace: str
    protocol: str
    seed: int = 1
    deviation: Optional[str] = None
    count: int = 0
    overrides: tuple = ()

    @property
    def spec_id(self) -> str:
        """Stable filesystem-safe identifier of the grid point."""
        parts = [self.trace, self.protocol, f"s{self.seed}"]
        if self.deviation and self.count:
            parts.append(f"{self.deviation}{self.count}")
        for key, value in self.overrides:
            parts.append(f"{key}={value}")
        return "_".join(str(p) for p in parts)

    def request(self) -> RunRequest:
        """The :class:`RunRequest` equivalent of this grid point.

        Executing the request reproduces :meth:`SweepRunner.run_one`
        bit-for-bit — same trace/community caches, same
        ``config_for`` call, same adversary placement — which is what
        lets a sweep batch out over the process pool.
        """
        family, _ = protocol(self.protocol)
        return RunRequest(
            trace_name=self.trace,
            family=family,
            protocol_name=self.protocol,
            seed=self.seed,
            deviation=self.deviation if self.count else None,
            deviation_count=self.count if self.deviation else 0,
            overrides=tuple(sorted(self.overrides)),
        )


@dataclass
class SweepRunner:
    """Executes :class:`RunSpec` grids with archival and resume."""

    archive_dir: PathLike
    sweep: str
    #: Called after each run with (spec, results, was_cached).
    on_result: Optional[Callable[[RunSpec, SimulationResults, bool], None]] = (
        None
    )

    def __post_init__(self) -> None:
        self._dir = Path(self.archive_dir) / self.sweep
        self._dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec: RunSpec) -> Path:
        """Archive location of one spec."""
        return self._dir / f"{spec.spec_id}.json"

    def is_done(self, spec: RunSpec) -> bool:
        """True when the spec's archive file exists."""
        return self.path_for(spec).exists()

    def run_one(self, spec: RunSpec, force: bool = False) -> SimulationResults:
        """Run (or load) one grid point."""
        path = self.path_for(spec)
        if path.exists() and not force:
            results = load_results(path)
            if self.on_result:
                self.on_result(spec, results, True)
            return results
        family, factory = protocol(spec.protocol)
        trace = evaluation_trace(spec.trace)
        community = evaluation_community(spec.trace)
        config = config_for(
            spec.trace, family, seed=spec.seed, **dict(spec.overrides)
        )
        strategies = None
        if spec.deviation and spec.count:
            strategies, _ = strategy_population(
                trace.nodes, spec.deviation, spec.count,
                seed=spec.seed, community=community,
            )
        results = Simulation(
            trace, factory(), config,
            strategies=strategies, community=community,
        ).run()
        save_results(results, path)
        if self.on_result:
            self.on_result(spec, results, False)
        return results

    def run_all(
        self,
        specs: List[RunSpec],
        force: bool = False,
        options: Optional[ExecutionOptions] = None,
    ) -> Dict[RunSpec, SimulationResults]:
        """Run every spec (skipping archived ones unless ``force``).

        With ``options.workers > 1`` the non-archived specs execute as
        one batch over the process pool (bit-identical to the
        sequential path) and are archived as the batch lands; archived
        specs still load in spec order and report ``was_cached=True``.
        """
        workers = options.workers if options is not None else 1
        if workers <= 1:
            return {spec: self.run_one(spec, force=force) for spec in specs}
        pending = [
            spec for spec in specs if force or not self.is_done(spec)
        ]
        fresh = dict(
            zip(
                (spec.spec_id for spec in pending),
                run_requests(
                    [spec.request() for spec in pending], options
                ),
            )
        )
        out: Dict[RunSpec, SimulationResults] = {}
        for spec in specs:
            if spec.spec_id in fresh:
                results = fresh[spec.spec_id]
                save_results(results, self.path_for(spec))
                if self.on_result:
                    self.on_result(spec, results, False)
                out[spec] = results
            else:
                out[spec] = self.run_one(spec)
        return out

    def collect(self) -> Dict[str, SimulationResults]:
        """Load every archived run of this sweep, keyed by spec id."""
        out: Dict[str, SimulationResults] = {}
        for path in sorted(self._dir.glob("*.json")):
            out[path.stem] = load_results(path)
        return out

    def summary_rows(self) -> List[Dict[str, object]]:
        """Flat summary table of the archived runs (for CSV export)."""
        rows: List[Dict[str, object]] = []
        for spec_id, results in self.collect().items():
            row: Dict[str, object] = {"spec_id": spec_id}
            row.update(
                {
                    "protocol": results.protocol,
                    "trace": results.trace,
                    "seed": results.seed,
                }
            )
            row.update(results.summary())
            rows.append(row)
        return rows


    def summary_csv(self, path: PathLike) -> int:
        """Write the archived-run summaries as CSV.

        Returns:
            Number of data rows written.
        """
        import csv

        rows = self.summary_rows()
        path = Path(path)
        if not rows:
            path.write_text("")
            return 0
        fields = list(rows[0].keys())
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)


def dropper_grid(
    trace: str,
    protocol_name: str,
    counts: tuple,
    seeds: tuple = (1, 2, 3),
    deviation: str = "dropper",
) -> List[RunSpec]:
    """Convenience grid: deviation counts x seeds for one protocol."""
    return [
        RunSpec(
            trace=trace,
            protocol=protocol_name,
            seed=seed,
            deviation=deviation if count else None,
            count=count,
        )
        for count in counts
        for seed in seeds
    ]
