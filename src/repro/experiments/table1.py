"""Table I: G2G Delegation detection performance on both traces.

The paper's Table I reports, for G2G Delegation (Destination Last
Contact) on Infocom 05 and Cambridge 06, the detection rate and the
average detection time in minutes for six adversary kinds: droppers,
liars, cheaters, and their with-outsiders variants.

Paper values, for reference (rate % / minutes):

====================  ============  ============
adversary             Infocom 05    Cambridge 06
====================  ============  ============
Droppers              88 / 12       86 / 21
Liars                 67 / 26       65 / 52
Cheaters              83 / 35       84 / 64
Droppers w/outsiders  87 / 15       84 / 23
Liars w/outsiders     64 / 28       62 / 54
Cheaters w/outsiders  83 / 37       81 / 68
====================  ============  ============

Detection times are offender-anchored: minutes from the Δ1-expiry of
the first message a node misbehaved on until its conviction (see
:meth:`repro.sim.results.SimulationResults.offender_detection_delays`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .catalog import protocol
from .parallel import ExecutionOptions
from .runner import ReplicationPlan, run_point
from .setting import TRACES, evaluation_trace

#: Row order matches the paper's table.
ADVERSARY_KINDS: Tuple[str, ...] = (
    "dropper",
    "liar",
    "cheater",
    "dropper_with_outsiders",
    "liar_with_outsiders",
    "cheater_with_outsiders",
)

ROW_LABELS = {
    "dropper": "Droppers",
    "liar": "Liars",
    "cheater": "Cheaters",
    "dropper_with_outsiders": "Droppers with outsiders",
    "liar_with_outsiders": "Liars with outsiders",
    "cheater_with_outsiders": "Cheaters with outsiders",
}

#: The paper's reference values: kind -> trace -> (rate, minutes).
PAPER_VALUES: Dict[str, Dict[str, Tuple[float, float]]] = {
    "dropper": {"infocom05": (0.88, 12), "cambridge06": (0.86, 21)},
    "liar": {"infocom05": (0.67, 26), "cambridge06": (0.65, 52)},
    "cheater": {"infocom05": (0.83, 35), "cambridge06": (0.84, 64)},
    "dropper_with_outsiders": {
        "infocom05": (0.87, 15),
        "cambridge06": (0.84, 23),
    },
    "liar_with_outsiders": {
        "infocom05": (0.64, 28),
        "cambridge06": (0.62, 54),
    },
    "cheater_with_outsiders": {
        "infocom05": (0.83, 37),
        "cambridge06": (0.81, 68),
    },
}

#: Adversary population per run — a moderate share of the network, in
#: the middle of the paper's sweep range.
DEFAULT_ADVERSARY_COUNT = 10


@dataclass
class DetectionCell:
    """One table cell: measured rate/time with the paper reference."""

    detection_rate: float
    detection_minutes: float
    paper_rate: float
    paper_minutes: float
    false_positives: int


@dataclass
class Table1:
    """The reproduced Table I."""

    cells: Dict[Tuple[str, str], DetectionCell] = field(default_factory=dict)

    def render(self) -> str:
        """Text rendering mirroring the paper's layout."""
        lines = [
            "== Table I: G2G Delegation detection (measured vs paper) ==",
            f"{'adversary':<26}"
            + "".join(
                f"{t + ' rate':>18}{t + ' time(m)':>18}" for t in TRACES
            ),
        ]
        for kind in ADVERSARY_KINDS:
            row = [f"{ROW_LABELS[kind]:<26}"]
            for trace_name in TRACES:
                cell = self.cells[(kind, trace_name)]
                row.append(
                    f"{cell.detection_rate:>7.0%} (p {cell.paper_rate:.0%})"
                    .rjust(18)
                )
                row.append(
                    f"{cell.detection_minutes:>6.0f} (p {cell.paper_minutes:.0f})"
                    .rjust(18)
                )
            lines.append("".join(row))
        return "\n".join(lines)


def run(
    quick: bool = False,
    plan: Optional[ReplicationPlan] = None,
    adversary_count: int = DEFAULT_ADVERSARY_COUNT,
    options: Optional[ExecutionOptions] = None,
) -> Table1:
    """Reproduce Table I."""
    if plan is None:
        plan = ReplicationPlan.make(quick)
    family, factory = protocol("g2g_delegation_last_contact")
    table = Table1()
    for trace_name in TRACES:
        count = min(adversary_count, evaluation_trace(trace_name).num_nodes - 2)
        for kind in ADVERSARY_KINDS:
            point = run_point(
                trace_name,
                family,
                factory,
                deviation=kind,
                deviation_count=count,
                plan=plan,
                options=options,
            )
            paper_rate, paper_minutes = PAPER_VALUES[kind][trace_name]
            table.cells[(kind, trace_name)] = DetectionCell(
                detection_rate=point.detection_rate,
                detection_minutes=point.detection_delay / 60.0,
                paper_rate=paper_rate,
                paper_minutes=paper_minutes,
                false_positives=point.false_positives,
            )
    return table
