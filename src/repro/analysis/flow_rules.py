"""Whole-program flow rules G2G008–G2G013.

Single-file rules catch a ``random.random()`` where it is written;
these catch the cross-module shapes that poison replayability one hop
away from the offending line:

=======  ==============================================================
G2G008   nondeterminism taint: a function reachable from the
         deterministic core transitively hits an unseeded RNG /
         wall-clock / OS-entropy sink without taking a seeded-RNG or
         context parameter
G2G009   counter-schema conformance: ``COUNTERS.x += `` sites vs. the
         ``HOT_MODULE_COUNTERS`` declarations and the ``FIELDS``
         schema that the telemetry ``ops.*`` export mirrors, checked
         in both directions
G2G010   layering: forbidden import edges out of the deterministic
         core (``core//sim//crypto//…`` must not import experiment
         orchestration, telemetry export, or the CLI), plus
         ``repro.api`` facade drift vs. its pinned ``__all__``
G2G011   cache-key completeness: a ``RunRequest``/``ScenarioSpec``
         field that can affect execution but is never folded into the
         cache key
G2G012   scheduler discipline: raw event-time arithmetic/comparisons
         or direct ``Event``/``TimerHandle`` construction outside
         ``sim/events.py``
G2G013   streaming discipline: ``.contacts`` materialization outside
         ``repro.traces`` — everything downstream of the trace layer
         must pull contacts through a ``ContactSource``
=======  ==============================================================

Each rule reads only :class:`~repro.analysis.project.ProjectModel`
facts — never the AST — so a fully cached lint run executes them
without parsing a single file.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Set, Tuple

from .framework import Violation
from .project import (
    ProjectModel,
    ProjectRule,
    register_project_rule,
)

#: Packages forming the deterministic core: replayable, digest-stable,
#: forbidden from importing orchestration or export code (G2G010) and
#: the reachability roots for taint analysis (G2G008).
CORE_PACKAGES = (
    "core", "sim", "crypto", "protocols", "traces", "adversaries", "social",
)

#: Import prefixes the deterministic core must not depend on.  The
#: telemetry *recording* API (spans, run aggregation) is allowed — the
#: core emits telemetry — but the exporter, experiment orchestration,
#: scenario campaign code, metrics reporting, the CLI, and the public
#: facade are all one-way consumers of the core.
FORBIDDEN_FOR_CORE = (
    "repro.experiments",
    "repro.scenarios",
    "repro.metrics",
    "repro.cli",
    "repro.api",
    "repro.telemetry.export",
)

#: Parameter names that mark a function as receiving its randomness /
#: time from the caller, which discharges G2G008: the *caller* owns
#: seeding, and the callee is deterministic given its arguments.
CONTEXT_PARAMS = frozenset(
    {"rng", "seed", "context", "ctx", "random_state", "clock", "now"}
)

#: Where the counter schema lives and which dataclasses must fold every
#: behavior-affecting field into their cache key.  Keys are
#: package-relative paths so fixture trees exercise the same rules.
COUNTER_SCHEMA_MODULE = "perf/counters.py"
CACHE_KEY_CLASSES: Dict[Tuple[str, str], Tuple[str, Tuple[str, ...]]] = {
    # (rel, class) -> (key-building method, fields exempt because they
    # are pure labels that never reach execution)
    ("experiments/parallel.py", "RunRequest"): ("cache_key", ()),
    ("scenarios/spec.py", "ScenarioSpec"): ("requests", ("name",)),
}

#: The scheduler module: sole sanctioned owner of event-time math and
#: Event/TimerHandle construction (G2G012).
SCHEDULER_REL = "sim/events.py"

#: The only package allowed to touch ``.contacts`` directly (G2G013):
#: the trace layer owns materialization; everything downstream streams.
CONTACTS_OWNER_PACKAGE = "traces"


def _function_index(
    project: ProjectModel,
) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """``(rel, qualname) -> function entry`` over the whole model."""
    index: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for entry in project.modules:
        for qual, fn in entry["functions"].items():
            index[(entry["rel"], qual)] = fn
    return index


@register_project_rule
class NondeterminismTaint(ProjectRule):
    """G2G008: core-reachable functions must not hit entropy sinks.

    Taint propagates backwards through the conservative call graph
    from every direct sink call (unseeded ``random.*``, wall clock,
    ``os.urandom``/``uuid4``/``secrets``).  A function is *exempt* —
    and stops propagation — when it takes a seeded-RNG/context
    parameter (``rng``, ``seed``, ``ctx``, …): its determinism is the
    caller's responsibility and seeding is auditable at the call site.
    Only functions defined in the deterministic core packages are
    reported; a tainted helper in ``perf/`` is flagged at the core
    function that calls it, where the leak enters replayed territory.
    """

    rule_id = "G2G008"
    summary = (
        "function reachable from the deterministic core transitively"
        " hits an RNG/wall-clock/entropy sink without a seeded-RNG or"
        " context parameter"
    )

    def check(self, project: ProjectModel) -> Iterator[Violation]:
        functions = _function_index(project)
        exempt: Set[Tuple[str, str]] = {
            node
            for node, fn in functions.items()
            if CONTEXT_PARAMS.intersection(fn["params"])
        }

        # Forward edges, resolved once; exempt callees absorb taint.
        callees: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        for entry in project.modules:
            for qual, fn in entry["functions"].items():
                node = (entry["rel"], qual)
                resolved = []
                for target in fn["calls"]:
                    callee = project.resolve_callee(entry, qual, target)
                    if callee is not None and callee not in exempt:
                        resolved.append(callee)
                callees[node] = resolved

        # Seed taint at direct sinks, then propagate to callers.
        taint: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        work: List[Tuple[str, str]] = []
        for node, fn in functions.items():
            if node in exempt:
                continue
            if fn["sinks"]:
                sink, line = fn["sinks"][0]
                taint[node] = (f"calls {sink} at line {line}",)
                work.append(node)

        callers: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        for node, outs in callees.items():
            for callee in outs:
                callers.setdefault(callee, []).append(node)

        while work:
            node = work.pop()
            chain = taint[node]
            for caller in callers.get(node, ()):
                if caller in taint or caller in exempt:
                    continue
                taint[caller] = (f"calls {node[1]} ({node[0]})",) + chain
                work.append(caller)

        for node in sorted(taint):
            rel, qual = node
            entry = project.by_rel.get(rel)
            if entry is None:
                continue
            package = entry["package"]
            if package not in CORE_PACKAGES:
                continue
            fn = functions[node]
            # Direct sinks inside the core are G2G001/G2G002 territory;
            # this rule owns the *transitive* leaks they cannot see.
            if fn["sinks"]:
                continue
            chain = " -> ".join(taint[node])
            yield self.flag(
                entry,
                fn["line"],
                f"{qual} transitively reaches a nondeterminism sink"
                f" ({chain}); thread a seeded rng/context parameter"
                f" through or seed at this boundary",
            )


@register_project_rule
class CounterSchemaConformance(ProjectRule):
    """G2G009: COUNTERS increments vs. the declared schema, both ways.

    Direction one: every ``COUNTERS.x += `` site must name a field in
    ``FIELDS`` (the telemetry ``ops.*`` export iterates ``FIELDS``, so
    an undeclared increment silently never exports) and, in a module
    listed in ``HOT_MODULE_COUNTERS``, must be declared for that
    module.  Direction two: every field a ``HOT_MODULE_COUNTERS``
    entry declares must actually be incremented by its module, and the
    mapped module must exist — otherwise the op-budget perf tests
    assert against counters that never move.
    """

    rule_id = "G2G009"
    summary = (
        "COUNTERS increments out of sync with HOT_MODULE_COUNTERS or"
        " the FIELDS ops.* export schema"
    )

    def check(self, project: ProjectModel) -> Iterator[Violation]:
        schema = project.by_rel.get(COUNTER_SCHEMA_MODULE)
        if schema is None or not schema["counter_decls"]:
            return
        decls = schema["counter_decls"]
        fields = set(decls.get("fields", ()))
        hot_map: Dict[str, List[str]] = decls.get("hot_map", {})

        for entry in project.modules:
            declared = set(hot_map.get(entry["rel"], ()))
            for field, line in sorted(entry["counters"].items()):
                if fields and field not in fields:
                    yield self.flag(
                        entry,
                        line,
                        f"COUNTERS.{field} is not in FIELDS — the"
                        f" telemetry ops.* export will never see it;"
                        f" add it to the schema in perf/counters.py",
                    )
                elif entry["rel"] in hot_map and field not in declared:
                    yield self.flag(
                        entry,
                        line,
                        f"COUNTERS.{field} incremented here but not"
                        f" declared for {entry['rel']} in"
                        f" HOT_MODULE_COUNTERS",
                    )

        hot_line = decls.get("hot_line", 1)
        for rel in sorted(hot_map):
            owner = project.by_rel.get(rel)
            if owner is None:
                yield self.flag(
                    schema,
                    hot_line,
                    f"HOT_MODULE_COUNTERS maps {rel!r} but no such"
                    f" module exists in this tree",
                )
                continue
            missing = sorted(set(hot_map[rel]) - set(owner["counters"]))
            for field in missing:
                yield self.flag(
                    schema,
                    hot_line,
                    f"HOT_MODULE_COUNTERS declares {field!r} for"
                    f" {rel} but that module never increments it —"
                    f" its op budget measures nothing",
                )


@register_project_rule
class LayeringViolation(ProjectRule):
    """G2G010: one-way dependency flow out of the deterministic core.

    The simulation core must stay importable (and replayable) without
    experiment orchestration, campaign code, metrics reporting, the
    exporter, the CLI, or the facade.  Also checks the facade itself:
    every name in ``repro.api``'s ``__all__`` must be defined or
    imported there, and every public top-level definition must be in
    ``__all__`` — drift in either direction breaks the pinned surface.
    """

    rule_id = "G2G010"
    summary = (
        "forbidden import edge out of the deterministic core, or"
        " repro.api facade drift vs. its pinned __all__"
    )

    def check(self, project: ProjectModel) -> Iterator[Violation]:
        for entry in project.modules:
            if entry["package"] in CORE_PACKAGES:
                # One report per import line: `from X import y` records
                # both the module and the name edge, which would
                # otherwise double-flag the same statement.
                flagged: Set[int] = set()
                for target, line in entry["imports"]:
                    if line in flagged:
                        continue
                    for forbidden in FORBIDDEN_FOR_CORE:
                        if target == forbidden or target.startswith(
                            forbidden + "."
                        ):
                            flagged.add(line)
                            yield self.flag(
                                entry,
                                line,
                                f"core-layer module imports {target}"
                                f" — the deterministic core must not"
                                f" depend on orchestration/export"
                                f" code",
                            )
                            break

        facade = project.by_rel.get("api.py")
        if facade is not None and facade["dunder_all"] is not None:
            pinned = set(facade["dunder_all"])
            defined = {name for name, _ in facade["public_defs"]}
            imported = set(facade["import_names"])
            for name in sorted(pinned - defined - imported):
                yield self.flag(
                    facade,
                    1,
                    f"repro.api __all__ exports {name!r} but the"
                    f" module neither defines nor imports it",
                )
            for name, line in sorted(facade["public_defs"]):
                if name == "__all__" or name in pinned:
                    continue
                yield self.flag(
                    facade,
                    line,
                    f"repro.api defines public {name!r} outside the"
                    f" pinned __all__ surface — export it or make it"
                    f" private",
                )


@register_project_rule
class CacheKeyCompleteness(ProjectRule):
    """G2G011: every behavior-affecting spec field reaches the key.

    ``RunRequest.cache_key`` / ``ScenarioSpec.requests`` must read
    every dataclass field (directly or through helper methods on the
    same class, followed transitively).  A field that never flows into
    the key means two semantically different runs can collide in the
    results cache — the worst kind of wrong answer, a *confident* one.
    """

    rule_id = "G2G011"
    summary = (
        "dataclass field on a cached spec (RunRequest/ScenarioSpec)"
        " never folded into its cache key"
    )

    def _reachable_refs(
        self, entry: Dict[str, Any], cls_name: str, method: str
    ) -> Set[str]:
        """self-attribute reads reachable from ``cls.method``."""
        refs: Set[str] = set()
        seen: Set[str] = set()
        stack = [method]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            fn = entry["functions"].get(f"{cls_name}.{name}")
            if fn is None:
                continue
            refs.update(fn["self_refs"])
            for target in fn["calls"]:
                if target.startswith("self."):
                    stack.append(target[len("self."):])
        return refs

    def check(self, project: ProjectModel) -> Iterator[Violation]:
        for (rel, cls_name), (method, exempt) in sorted(
            CACHE_KEY_CLASSES.items()
        ):
            entry = project.by_rel.get(rel)
            if entry is None:
                continue
            cls = entry["classes"].get(cls_name)
            if cls is None:
                continue
            if f"{cls_name}.{method}" not in entry["functions"]:
                yield self.flag(
                    entry,
                    cls["line"],
                    f"{cls_name} is a cached spec but has no"
                    f" {method}() to build its key",
                )
                continue
            refs = self._reachable_refs(entry, cls_name, method)
            for field, line in cls["fields"]:
                if field in exempt or field in refs:
                    continue
                yield self.flag(
                    entry,
                    line,
                    f"{cls_name}.{field} never flows into"
                    f" {method}() — two runs differing only in"
                    f" {field!r} would collide in the results cache",
                )


@register_project_rule
class SchedulerDiscipline(ProjectRule):
    """G2G012: event-time math stays inside ``sim/events.py``.

    Raw arithmetic or comparisons on ``event.time`` / ``timer.time`` /
    ``handle.time`` outside the scheduler — or direct ``Event`` /
    ``TimerHandle`` construction — re-implements ordering the
    scheduler already defines, and any disagreement (tie-breaking,
    clamping, cancellation) silently diverges replays.  Use
    ``Scheduler.schedule`` / ``dispatch_until`` instead.
    """

    rule_id = "G2G012"
    summary = (
        "raw event-time arithmetic/comparison or Event/TimerHandle"
        " construction outside sim/events.py"
    )

    def check(self, project: ProjectModel) -> Iterator[Violation]:
        for entry in project.modules:
            if entry["rel"] == SCHEDULER_REL:
                continue
            if entry["package"] not in CORE_PACKAGES:
                continue
            for line, col, expr in entry["event_time_ops"]:
                yield self.flag(
                    entry,
                    line,
                    f"raw event-time expression on {expr!r} outside"
                    f" the scheduler; route ordering through"
                    f" sim/events.py",
                    column=col + 1,
                )
            for line, col, cls_name in entry["event_constructions"]:
                yield self.flag(
                    entry,
                    line,
                    f"direct {cls_name} construction outside the"
                    f" scheduler; use Scheduler.schedule",
                    column=col + 1,
                )


@register_project_rule
class StreamingDiscipline(ProjectRule):
    """G2G013: ``.contacts`` materialization stays inside the trace layer.

    The engine scaled to 1M-node universes by pulling contacts through
    the :class:`~repro.traces.stream.ContactSource` choke point — the
    event heap holds only the in-flight frontier, never the full
    contact list.  A ``.contacts`` read anywhere outside
    ``repro.traces`` re-materializes the trace and silently reverts
    that memory bound (streaming sources do not even *have* a trace to
    materialize: ``source.trace`` is None for them).  Analysis-style
    consumers that genuinely need the aggregate view carry a
    ``# g2g: allow(G2G013: ...)`` pragma.
    """

    rule_id = "G2G013"
    summary = (
        ".contacts materialization outside repro.traces — stream"
        " through a ContactSource (iter_contacts) instead"
    )

    def check(self, project: ProjectModel) -> Iterator[Violation]:
        for entry in project.modules:
            if entry["package"] == CONTACTS_OWNER_PACKAGE:
                continue
            for line, col in entry.get("contacts_reads", ()):
                yield self.flag(
                    entry,
                    line,
                    ".contacts read outside repro.traces materializes"
                    " the full contact list; pull contacts through a"
                    " ContactSource (iter_contacts) so streaming"
                    " universes stay bounded-memory",
                    column=col + 1,
                )
