"""Content-hash incremental cache for ``repro lint``.

The analyzer's cost is parsing and rule traversal; both depend only on
file *content* and the rule implementations.  The cache therefore keys
each file on its sha256 and the whole store on a fingerprint of the
analysis package's own sources — touch any rule and every entry is
invalid at once, no staleness heuristics.  Per file it persists:

* the single-file rule findings (post-pragma, full rule set — the
  runner filters ``--select`` afterwards, so one entry serves any
  selection), and
* the :func:`~repro.analysis.project.module_facts` dict, which is all
  the project rules (G2G008–G2G012) read.

A warm run over an unchanged tree thus hashes files, loads JSON, and
executes the project rules on cached facts — it never parses Python.
``repro lint --stats`` prints ``parsed=0`` on that path, which CI
asserts.

Entries are keyed by path and validated by hash, so a file edit
replaces its entry in place and the store never grows beyond one entry
per file.  Corrupt or version-mismatched stores are discarded
silently: a cache can always be rebuilt, a crash cannot.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .framework import Violation

_CACHE_VERSION = 2
_CACHE_FILENAME = "lint-cache.json"

_ANALYSIS_DIR = Path(__file__).resolve().parent


def rules_fingerprint() -> str:
    """sha256 over the analysis package's own sources.

    Any edit to the framework, a rule, the project model, or the
    runner changes the fingerprint and invalidates every cache entry.
    """
    digest = hashlib.sha256()
    for path in sorted(_ANALYSIS_DIR.glob("*.py")):
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def file_sha256(path: Path) -> str:
    """Content hash of one file."""
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _violation_to_dict(v: Violation) -> Dict[str, Any]:
    return {
        "rule_id": v.rule_id,
        "path": v.path,
        "line": v.line,
        "column": v.column,
        "message": v.message,
    }


def _violation_from_dict(d: Dict[str, Any]) -> Violation:
    return Violation(
        rule_id=d["rule_id"],
        path=d["path"],
        line=d["line"],
        column=d["column"],
        message=d["message"],
    )


class LintCache:
    """One on-disk store: ``{path: {sha, violations, facts}}``."""

    def __init__(self, cache_dir: Path) -> None:
        self.cache_dir = cache_dir
        self.path = cache_dir / _CACHE_FILENAME
        self.fingerprint = rules_fingerprint()
        self._files: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            doc = json.loads(self.path.read_text())
        except (ValueError, OSError):
            return
        if (
            doc.get("version") != _CACHE_VERSION
            or doc.get("rules") != self.fingerprint
        ):
            return
        files = doc.get("files")
        if isinstance(files, dict):
            self._files = files

    def lookup(self, path: Path, sha: str) -> Optional[Dict[str, Any]]:
        """The stored entry for ``path`` if its content still matches."""
        entry = self._files.get(str(path))
        if entry is None or entry.get("sha") != sha:
            return None
        return entry

    def cached_violations(self, entry: Dict[str, Any]) -> List[Violation]:
        return [_violation_from_dict(d) for d in entry.get("violations", [])]

    def store(
        self,
        path: Path,
        sha: str,
        violations: List[Violation],
        facts: Optional[Dict[str, Any]],
    ) -> None:
        self._files[str(path)] = {
            "sha": sha,
            "violations": [_violation_to_dict(v) for v in violations],
            "facts": facts,
        }
        self._dirty = True

    def save(self) -> None:
        """Persist if anything changed since load."""
        if not self._dirty:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        doc = {
            "version": _CACHE_VERSION,
            "rules": self.fingerprint,
            "files": self._files,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True))
        tmp.replace(self.path)
        self._dirty = False
