"""Static analysis for the reproduction's determinism invariants.

The simulator's headline claims — bit-identical trace-driven runs per
seed, immutable signed wire artifacts, honest op-count budgets — are
*invariants*, and the test suite can only spot-check them dynamically.
This package enforces them statically with a small AST lint framework
(:mod:`repro.analysis.framework`), seven single-file rules
(:mod:`repro.analysis.rules`, ids ``G2G001``–``G2G007``), a
whole-program model with five cross-module flow rules
(:mod:`repro.analysis.project` / :mod:`repro.analysis.flow_rules`,
ids ``G2G008``–``G2G012``, behind ``repro lint --project``), and a
runner (:mod:`repro.analysis.runner`) with an incremental content-hash
cache, multiprocess fan-out, baseline files, and text/JSON/SARIF
output — all behind the ``repro lint`` CLI command.

Rules are suppressed per line with pragma comments::

    value = time.time()  # g2g: allow(G2G002: wall clock feeds a log line)
    except Exception:  # g2g: allow-broad-except(plugin code may raise anything)

See ``docs/development.md`` for the full rule catalogue.
"""

from .framework import (
    RULE_REGISTRY,
    LintModule,
    Rule,
    Violation,
    register_rule,
)
from .project import (
    PROJECT_RULE_REGISTRY,
    ProjectModel,
    ProjectRule,
    check_project,
    module_facts,
    register_project_rule,
)
from .runner import LintRun, lint_paths, lint_source, lint_tree, render_report

# Importing the rule modules populates the registries.
from . import rules as _rules  # noqa: F401  (import for side effect)
from . import flow_rules as _flow_rules  # noqa: F401  (same)

__all__ = [
    "LintModule",
    "LintRun",
    "ProjectModel",
    "ProjectRule",
    "PROJECT_RULE_REGISTRY",
    "Rule",
    "RULE_REGISTRY",
    "Violation",
    "check_project",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "module_facts",
    "register_project_rule",
    "render_report",
]
