"""Static analysis for the reproduction's determinism invariants.

The simulator's headline claims — bit-identical trace-driven runs per
seed, immutable signed wire artifacts, honest op-count budgets — are
*invariants*, and the test suite can only spot-check them dynamically.
This package enforces them statically with a small AST lint framework
(:mod:`repro.analysis.framework`), seven repo-specific rules
(:mod:`repro.analysis.rules`, ids ``G2G001``–``G2G007``), and a runner
(:mod:`repro.analysis.runner`) behind the ``repro lint`` CLI command.

Rules are suppressed per line with pragma comments::

    value = time.time()  # g2g: allow(G2G002: wall clock feeds a log line)
    except Exception:  # g2g: allow-broad-except(plugin code may raise anything)

See ``docs/development.md`` for the full rule catalogue.
"""

from .framework import (
    RULE_REGISTRY,
    LintModule,
    Rule,
    Violation,
    register_rule,
)
from .runner import lint_paths, lint_source, render_report

# Importing the rules module populates RULE_REGISTRY.
from . import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "LintModule",
    "Rule",
    "RULE_REGISTRY",
    "Violation",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_report",
]
