"""The G2G rule set: statically enforced reproduction invariants.

Each rule guards one way a change could silently invalidate the
paper's reproduced numbers (Table 1, Figs. 3–8) or its Nash-equilibrium
argument:

* :class:`GlobalRngRule` (G2G001) — one stray draw from the process-
  global RNG desynchronizes every later draw in the run.
* :class:`WallClockRule` (G2G002) — wall-clock or OS-entropy reads make
  a "same seed" rerun a different experiment.
* :class:`UnorderedIterationRule` (G2G003) — set iteration order varies
  with hash randomization; feeding it into RNG draws or message
  ordering breaks bit-identical replay.
* :class:`FrozenMutationRule` (G2G004) — signed wire/proof artifacts
  are immutable once built; mutation outside the two sanctioned
  signature-backfill sites would let state drift from its signature.
* :class:`CounterCoverageRule` (G2G005) — the op-count perf budgets are
  only honest while every hot module actually increments its counters.
* :class:`BroadExceptRule` (G2G006) — ``except Exception`` hides the
  very determinism bugs the rest of the rule set exists to catch.
* :class:`PrivateHeapRule` (G2G007) — deferred work in the hot
  packages must go through the run scheduler (``sim/events.py``), not
  a private ``heapq``; side heaps fork the event order the
  determinism contract is stated in.

See ``docs/development.md`` for the user-facing catalogue.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..perf.counters import FIELDS, HOT_MODULE_COUNTERS
from .framework import (
    LintModule,
    Rule,
    Violation,
    dotted_name,
    function_stack,
    imported_origins,
    register_rule,
    resolve_call,
)

#: Packages where simulation-visible randomness must come from an
#: injected, seeded ``random.Random`` instance.
SEEDED_RNG_PACKAGES = (
    "sim", "core", "crypto", "protocols", "traces", "adversaries",
    "scenarios",
)

#: Packages forming the relay-loop hot path, where iteration order is
#: simulation-visible (message ordering, RNG draw order).
HOT_PACKAGES = ("sim", "core", "protocols")

#: Module-global ``random`` functions that draw from (or reseed) the
#: process-wide RNG.
GLOBAL_RNG_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: Call targets that read the wall clock or OS entropy.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: The only files allowed to call ``object.__setattr__`` outside a
#: ``__post_init__`` constructor: the sanctioned signature-backfill
#: sites for frozen wire/proof artifacts.
SANCTIONED_SETATTR_FILES = ("core/wire.py", "core/proofs.py")

#: The one module in the hot packages allowed to import ``heapq``:
#: the run scheduler every other timer mechanism routes through.
SCHEDULER_MODULE = "sim/events.py"


@register_rule
class GlobalRngRule(Rule):
    """G2G001: no draws from the process-global ``random`` module."""

    rule_id = "G2G001"
    summary = (
        "global-RNG call (random.random()/randint()/seed()/...) or "
        "unseeded random.Random() in a determinism-scoped package"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        if not module.in_packages(SEEDED_RNG_PACKAGES):
            return
        origins = imported_origins(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node.func, origins)
            if target is None or not target.startswith("random."):
                continue
            func = target[len("random."):]
            if func in GLOBAL_RNG_FUNCS:
                yield self.violation(
                    module, node,
                    f"call to global RNG random.{func}(); draw from an "
                    f"injected, seeded random.Random instance instead",
                )
            elif func == "SystemRandom":
                yield self.violation(
                    module, node,
                    "random.SystemRandom draws OS entropy and can never "
                    "replay; use a seeded random.Random",
                )
            elif func == "Random" and not node.args and not node.keywords:
                yield self.violation(
                    module, node,
                    "unseeded random.Random() seeds from OS entropy; "
                    "pass an explicit seed or accept an injected rng",
                )


@register_rule
class WallClockRule(Rule):
    """G2G002: no wall-clock / environment nondeterminism."""

    rule_id = "G2G002"
    summary = (
        "wall-clock or OS-entropy read (time.time, datetime.now, "
        "os.urandom, secrets) outside perf/ and experiments/report"
    )

    def _exempt(self, module: LintModule) -> bool:
        return (
            module.package == "perf"
            or module.rel == "experiments/report.py"
        )

    def check(self, module: LintModule) -> Iterator[Violation]:
        if module.rel is None or self._exempt(module):
            return
        origins = imported_origins(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root == "secrets":
                        yield self.violation(
                            module, node,
                            "the secrets module is OS entropy by design "
                            "and can never replay deterministically",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None and (
                    node.module.split(".", 1)[0] == "secrets"
                ):
                    yield self.violation(
                        module, node,
                        "the secrets module is OS entropy by design "
                        "and can never replay deterministically",
                    )
            elif isinstance(node, ast.Call):
                target = resolve_call(node.func, origins)
                if target in WALL_CLOCK_CALLS:
                    yield self.violation(
                        module, node,
                        f"{target}() is nondeterministic across runs; "
                        f"derive times from the simulation clock (or move "
                        f"the read into perf/ or experiments/report)",
                    )


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactically-certain set expressions (order not guaranteed)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "intersection", "union", "difference", "symmetric_difference",
        ):
            return True
    return False


@register_rule
class UnorderedIterationRule(Rule):
    """G2G003: no iteration over set expressions in hot modules."""

    rule_id = "G2G003"
    summary = (
        "loop iterates directly over a set expression in a hot module; "
        "wrap it in sorted() so order survives hash randomization"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        if not module.in_packages(HOT_PACKAGES):
            return
        for node in ast.walk(module.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expression(it):
                    yield self.violation(
                        module, it,
                        "iterating a set yields hash order, which leaks "
                        "into RNG-draw and message ordering; iterate "
                        "sorted(...) instead",
                    )


@register_rule
class FrozenMutationRule(Rule):
    """G2G004: ``object.__setattr__`` only at the sanctioned sites."""

    rule_id = "G2G004"
    summary = (
        "object.__setattr__ outside core/wire.py, core/proofs.py, or a "
        "__post_init__ constructor mutates a frozen artifact"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        if module.rel in SANCTIONED_SETATTR_FILES:
            return
        for node, stack in function_stack(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            if "__post_init__" in stack:
                # Frozen-dataclass self-construction, not mutation of
                # an artifact that is already on the wire.
                continue
            yield self.violation(
                module, node,
                "frozen wire/proof artifacts are immutable once signed; "
                "only the signature-backfill sites in core/wire.py and "
                "core/proofs.py may call object.__setattr__",
            )


@register_rule
class CounterCoverageRule(Rule):
    """G2G005: hot modules must increment their declared counters."""

    rule_id = "G2G005"
    summary = (
        "a hot module stopped incrementing a COUNTERS field declared "
        "for it in repro.perf.counters (or increments an unknown one)"
    )

    def _increments(self, tree: ast.Module) -> Dict[str, int]:
        """COUNTERS fields augmented in this module -> first line."""
        seen: Dict[str, int] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.AugAssign):
                continue
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "COUNTERS"
            ):
                seen.setdefault(target.attr, target.lineno)
        return seen

    def check(self, module: LintModule) -> Iterator[Violation]:
        incremented = self._increments(module.tree)
        for name, lineno in sorted(incremented.items(), key=lambda kv: kv[1]):
            if name not in FIELDS:
                yield Violation(
                    rule_id=self.rule_id, path=module.path, line=lineno,
                    column=1,
                    message=(
                        f"COUNTERS.{name} is not declared in "
                        f"repro.perf.counters.FIELDS — a typo here would "
                        f"fail at runtime (OpCounters uses __slots__)"
                    ),
                )
        required = HOT_MODULE_COUNTERS.get(module.rel or "")
        if required is None:
            return
        missing = [name for name in required if name not in incremented]
        if missing:
            yield Violation(
                rule_id=self.rule_id, path=module.path, line=1, column=1,
                message=(
                    f"hot module no longer increments COUNTERS "
                    f"{', '.join(missing)} declared for it in "
                    f"repro.perf.counters.HOT_MODULE_COUNTERS — the "
                    f"op-budget perf tests are no longer measuring it"
                ),
            )


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _broad_names(type_node: ast.AST) -> Set[str]:
    nodes = (
        type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    )
    return {
        node.id
        for node in nodes
        if isinstance(node, ast.Name)
        and node.id in ("Exception", "BaseException")
    }


@register_rule
class BroadExceptRule(Rule):
    """G2G006: no silent ``except Exception`` without a pragma."""

    rule_id = "G2G006"
    summary = (
        "broad except (bare / Exception / BaseException) that neither "
        "re-raises nor carries # g2g: allow-broad-except(reason)"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                caught = "bare except:"
            else:
                broad = _broad_names(node.type)
                if not broad:
                    continue
                caught = f"except {'/'.join(sorted(broad))}"
            if _reraises(node):
                # Cleanup-and-reraise propagates the error; nothing is
                # being swallowed.
                continue
            yield self.violation(
                module, node,
                f"{caught} swallows programming errors alongside the "
                f"failures it meant to tolerate; narrow the exception "
                f"types or add # g2g: allow-broad-except(reason)",
            )


@register_rule
class PrivateHeapRule(Rule):
    """G2G007: no private ``heapq`` outside the scheduler module."""

    rule_id = "G2G007"
    summary = (
        "heapq import in a hot package outside the scheduler module "
        "(sim/events.py); route deferred work through the run scheduler"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        if not module.in_packages(HOT_PACKAGES):
            return
        if module.rel == SCHEDULER_MODULE:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                if any(
                    alias.name.split(".", 1)[0] == "heapq"
                    for alias in node.names
                ):
                    yield self._flag(module, node)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None and (
                    node.module.split(".", 1)[0] == "heapq"
                ):
                    yield self._flag(module, node)

    def _flag(self, module: LintModule, node: ast.AST) -> Violation:
        return self.violation(
            module, node,
            "a private heap forks the event order the determinism "
            "contract is stated in; schedule timers through "
            "SimulationContext.schedule (the run scheduler in "
            "sim/events.py) instead",
        )
