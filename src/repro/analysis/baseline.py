"""Lint baselines: accept existing findings, block new ones.

A baseline is a checked-in JSON file mapping finding *fingerprints* to
counts.  ``repro lint --baseline FILE`` subtracts baselined findings
from the report, so introducing the analyzer (or a new rule) to a tree
with pre-existing findings does not block CI — only *new* findings
fail the build.  ``--update-baseline`` rewrites the file from the
current findings, which is how accepted debt is recorded and how fixed
findings leave the file (shrinking baselines are progress; growing
ones are review territory).

Fingerprints hash ``rule_id | package-relative-ish path | message``
and deliberately exclude line numbers: unrelated edits that shift a
finding by a few lines must not resurrect it as "new".  Identical
findings (same fingerprint) are counted — a baseline entry of 2 admits
two occurrences, and a third is reported.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .framework import Violation, package_relative

_BASELINE_VERSION = 1


def fingerprint(violation: Violation) -> str:
    """Stable 16-hex-digit id for one finding, line-number-free."""
    rel = package_relative(Path(violation.path)) or violation.path
    payload = f"{violation.rule_id}|{rel}|{violation.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> admitted count.  A missing file admits nothing."""
    if not path.exists():
        return {}
    doc = json.loads(path.read_text())
    entries = doc.get("entries", {})
    return {str(fp): int(count) for fp, count in entries.items()}


def write_baseline(path: Path, violations: Sequence[Violation]) -> int:
    """Record the given findings as the new baseline; returns count."""
    counts: Dict[str, int] = {}
    samples: Dict[str, str] = {}
    for v in violations:
        fp = fingerprint(v)
        counts[fp] = counts.get(fp, 0) + 1
        # One rendered sample per fingerprint keeps the file reviewable.
        samples.setdefault(fp, v.render())
    doc = {
        "version": _BASELINE_VERSION,
        "entries": dict(sorted(counts.items())),
        "samples": dict(sorted(samples.items())),
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return len(violations)


def apply_baseline(
    violations: Sequence[Violation], baseline: Dict[str, int]
) -> Tuple[List[Violation], int]:
    """Split findings into (new, suppressed-count) against a baseline.

    Counted semantics: each fingerprint absorbs at most its admitted
    count, in report order, so a duplicated finding beyond the admitted
    multiplicity still surfaces.
    """
    budget = dict(baseline)
    fresh: List[Violation] = []
    suppressed = 0
    for v in violations:
        fp = fingerprint(v)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            suppressed += 1
        else:
            fresh.append(v)
    return fresh, suppressed
