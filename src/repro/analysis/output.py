"""Report renderers: text, JSON, and SARIF 2.1.0.

Text is for humans at a terminal (``path:line:col: RULEID message``
lines plus a summary).  JSON is the same data machine-readable, for ad
hoc scripting against lint results.  SARIF 2.1.0 is the interchange
format GitHub code scanning ingests — the CI static-analysis job
uploads it so findings annotate pull requests inline.

All three renderers consume plain :class:`~repro.analysis.framework.
Violation` sequences; they know nothing about how the violations were
produced (single-file rules, project rules, cached, parallel).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Type

from .framework import RULE_REGISTRY, Rule, Violation
from .project import PROJECT_RULE_REGISTRY
from .runner import render_report

#: The formats ``repro lint --format`` accepts.
FORMATS = ("text", "json", "sarif")

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)


def _rule_summary(rule_id: str) -> str:
    registry: Dict[str, Type[Rule]] = {}
    registry.update(RULE_REGISTRY)
    registry.update(PROJECT_RULE_REGISTRY)
    cls = registry.get(rule_id)
    if cls is None:
        # E999 (syntax error) and future diagnostics without a rule class.
        return "file does not parse"
    return " ".join(cls.summary.split())


def render_text(violations: Sequence[Violation]) -> str:
    """The classic terminal report (delegates to ``render_report``)."""
    return render_report(violations)


def render_json(violations: Sequence[Violation]) -> str:
    """One JSON document: violation list plus per-rule counts."""
    by_rule: Dict[str, int] = {}
    for v in violations:
        by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
    doc = {
        "violations": [
            {
                "rule_id": v.rule_id,
                "path": v.path,
                "line": v.line,
                "column": v.column,
                "message": v.message,
            }
            for v in violations
        ],
        "counts": dict(sorted(by_rule.items())),
        "total": len(violations),
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_sarif(
    violations: Sequence[Violation],
    tool_version: Optional[str] = None,
) -> str:
    """A SARIF 2.1.0 log with one run and one result per violation.

    Rule metadata (id + one-line summary) is emitted for every rule
    that appears in the results, so code-scanning UIs can group and
    describe findings without access to this repository's docs.
    """
    seen_rules: List[str] = []
    for v in violations:
        if v.rule_id not in seen_rules:
            seen_rules.append(v.rule_id)
    seen_rules.sort()
    rule_index = {rule_id: i for i, rule_id in enumerate(seen_rules)}

    results = [
        {
            "ruleId": v.rule_id,
            "ruleIndex": rule_index[v.rule_id],
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": v.line,
                            "startColumn": max(v.column, 1),
                        },
                    }
                }
            ],
        }
        for v in violations
    ]

    driver = {
        "name": "repro-lint",
        "informationUri": (
            "https://example.invalid/repro/docs/development.md"
        ),
        "rules": [
            {
                "id": rule_id,
                "shortDescription": {"text": _rule_summary(rule_id)},
                "defaultConfiguration": {"level": "error"},
            }
            for rule_id in seen_rules
        ],
    }
    if tool_version is not None:
        driver["version"] = tool_version

    log = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"


def render(
    violations: Sequence[Violation],
    fmt: str,
    tool_version: Optional[str] = None,
) -> str:
    """Dispatch on ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "text":
        return render_text(violations)
    if fmt == "json":
        return render_json(violations)
    if fmt == "sarif":
        return render_sarif(violations, tool_version=tool_version)
    raise ValueError(
        f"unknown format {fmt!r}; expected one of {', '.join(FORMATS)}"
    )
