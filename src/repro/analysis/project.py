"""Whole-program model for the cross-module flow rules.

The single-file rules (G2G001–G2G007) see one AST at a time; the flow
rules (G2G008–G2G013, :mod:`repro.analysis.flow_rules`) reason about
the program: a seeded-RNG leak *through* a call chain, a counter
declared in one module and incremented in another, an import edge that
violates layering.  This module gives them a shared
:class:`ProjectModel`:

* **Module facts.** :func:`module_facts` distills one parsed module
  into a plain-dict summary — resolved imports (relative imports
  included, unlike the single-file ``imported_origins`` helper),
  per-function call and nondeterminism-sink lists, class field/method
  tables, ``COUNTERS`` increments, event-time expression sites.  Facts
  are JSON-serializable by construction, so the incremental lint cache
  (:mod:`repro.analysis.cache`) can persist them and a warm run never
  re-parses an unchanged file.
* **Project indexes.** :class:`ProjectModel` wires the facts together:
  module lookup by dotted name, a conservative intra-project call
  graph (resolved imports + same-module calls + ``self.`` methods;
  anything unresolvable is simply absent, never guessed), and pragma
  suppression lookup so ``# g2g: allow(G2G008: ...)`` works for flow
  rules exactly as it does for single-file rules.
* **Rule registry.** :class:`ProjectRule` subclasses register into
  :data:`PROJECT_RULE_REGISTRY` via :func:`register_project_rule`;
  :func:`check_project` is the project-mode counterpart of
  ``check_module``.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Type

from .framework import (
    LintModule,
    Rule,
    Violation,
    _RULE_ID,
    dotted_name,
)

#: Registered whole-program rules, keyed by rule id (``G2G008`` …).
PROJECT_RULE_REGISTRY: Dict[str, Type["ProjectRule"]] = {}

#: Call targets treated as nondeterminism *sinks* for taint analysis:
#: a function whose body reaches one of these (directly or through the
#: call graph) cannot replay bit-identically.  Mirrors the G2G001 /
#: G2G002 target sets, but applies everywhere — exempt packages like
#: ``perf/`` still *source* taint even though the single-file rules
#: stay quiet there.
SINK_PREFIXES = ("secrets.",)
WALL_CLOCK_SINKS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})
GLOBAL_RNG_SINK_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: Names whose ``.time`` attribute marks an event/timer object in the
#: scheduler-discipline rule (a syntactic tripwire, like G2G003).
_EVENT_LIKE_NAMES = ("event", "timer", "handle", "transition")

#: Event/timer classes whose direct construction outside the scheduler
#: and its sanctioned consumers bypasses ``Scheduler.schedule``.
_EVENT_CLASS_SUFFIXES = ("events.Event", "events.TimerHandle")


def module_dotted_name(rel: str) -> str:
    """Dotted module path for a package-relative file path.

    ``"sim/node.py"`` -> ``"repro.sim.node"``; ``"sim/__init__.py"``
    -> ``"repro.sim"``; ``"api.py"`` -> ``"repro.api"``.
    """
    parts = rel.split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    return ".".join(["repro"] + [p for p in parts if p])


def _package_parts(rel: str, dotted: str) -> List[str]:
    """The package a relative import resolves against, as parts."""
    if rel.endswith("__init__.py"):
        return dotted.split(".")
    return dotted.split(".")[:-1]


def resolve_imports(
    tree: ast.Module, rel: str
) -> Tuple[List[Tuple[str, int]], Dict[str, str]]:
    """Resolved import edges and name bindings for one module.

    Returns ``(edges, names)`` where ``edges`` is a list of
    ``(dotted_target, lineno)`` pairs (module-level targets; for
    ``from X import y`` both ``X`` and the candidate submodule ``X.y``
    are recorded, since the AST cannot tell a submodule from a name)
    and ``names`` maps local names to their dotted origins — the
    project-aware, relative-import-capable counterpart of the
    single-file ``imported_origins`` helper.
    """
    dotted = module_dotted_name(rel)
    edges: List[Tuple[str, int]] = []
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                edges.append((alias.name, node.lineno))
                local = alias.asname or alias.name.split(".", 1)[0]
                names[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _package_parts(rel, dotted)
                cut = len(base) - (node.level - 1)
                if cut < 0:
                    continue  # beyond the project root; unresolvable
                base = base[:cut]
                target_parts = base + (
                    node.module.split(".") if node.module else []
                )
                target = ".".join(target_parts)
            else:
                if node.module is None:
                    continue
                target = node.module
            edges.append((target, node.lineno))
            for alias in node.names:
                if alias.name == "*":
                    continue
                edges.append((f"{target}.{alias.name}", node.lineno))
                names[alias.asname or alias.name] = f"{target}.{alias.name}"
    return edges, names


def _resolve(node: ast.AST, names: Dict[str, str]) -> Optional[str]:
    """Fully qualified dotted name of a reference, via ``names``."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, tail = name.partition(".")
    origin = names.get(head)
    if origin is None:
        return None
    return f"{origin}.{tail}" if tail else origin


def _sink_target(call: ast.Call, names: Dict[str, str]) -> Optional[str]:
    """Nondeterminism-sink description for a call, or None."""
    target = _resolve(call.func, names)
    if target is None:
        return None
    if target in WALL_CLOCK_SINKS:
        return target
    if any(target.startswith(prefix) for prefix in SINK_PREFIXES):
        return target
    if target.startswith("random."):
        func = target[len("random."):]
        if func in GLOBAL_RNG_SINK_FUNCS or func == "SystemRandom":
            return target
        if func == "Random" and not call.args and not call.keywords:
            return "random.Random() [unseeded]"
    return None


def _param_names(node: ast.AST) -> List[str]:
    args = node.args  # type: ignore[attr-defined]
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    return params


def _literal_str_tuple(node: ast.AST) -> Optional[List[str]]:
    """The value of a tuple/list-of-strings literal, or None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        values.append(elt.value)
    return values


def _counter_decls(tree: ast.Module) -> Optional[Dict[str, Any]]:
    """FIELDS / HOT_MODULE_COUNTERS literals, if this module declares them."""
    decls: Dict[str, Any] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "FIELDS":
                fields = _literal_str_tuple(value)
                if fields is not None:
                    decls["fields"] = fields
                    decls["fields_line"] = node.lineno
            elif target.id == "HOT_MODULE_COUNTERS":
                if not isinstance(value, ast.Dict):
                    continue
                hot: Dict[str, List[str]] = {}
                ok = True
                for key, val in zip(value.keys, value.values):
                    if not (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ):
                        ok = False
                        break
                    names = _literal_str_tuple(val)
                    if names is None:
                        ok = False
                        break
                    hot[key.value] = names
                if ok:
                    decls["hot_map"] = hot
                    decls["hot_line"] = node.lineno
    return decls or None


def _is_event_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "time":
        base = node.value
        if isinstance(base, ast.Name):
            lowered = base.id.lower()
            return any(mark in lowered for mark in _EVENT_LIKE_NAMES)
    return False


class _FactsVisitor(ast.NodeVisitor):
    """One-pass extraction of the function/class tables for facts."""

    def __init__(self, names: Dict[str, str], module_dotted: str) -> None:
        self.names = names
        self.module = module_dotted
        self.functions: Dict[str, Dict[str, Any]] = {}
        self.classes: Dict[str, Dict[str, Any]] = {}
        self.top_level_functions: List[str] = []
        self._func_stack: List[str] = []
        self._class_stack: List[str] = []

    # -- structure ------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._class_stack and not self._func_stack:
            entry: Dict[str, Any] = {
                "line": node.lineno,
                "fields": [],
                "methods": {},
            }
            for child in node.body:
                if isinstance(child, ast.AnnAssign) and isinstance(
                    child.target, ast.Name
                ):
                    entry["fields"].append(
                        [child.target.id, child.lineno]
                    )
            self.classes[node.name] = entry
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: Any) -> None:
        qual = ".".join(
            self._class_stack + self._func_stack + [node.name]
        )
        entry = {
            "line": node.lineno,
            "params": _param_names(node),
            "calls": [],
            "self_refs": [],
            "sinks": [],
        }
        self.functions[qual] = entry
        if not self._class_stack and not self._func_stack:
            self.top_level_functions.append(node.name)
        if len(self._class_stack) == 1 and not self._func_stack:
            self.classes[self._class_stack[0]]["methods"][node.name] = {
                "line": node.lineno,
            }
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- references -----------------------------------------------------

    def _current(self) -> Optional[Dict[str, Any]]:
        if not self._func_stack:
            return None
        qual = ".".join(self._class_stack + self._func_stack)
        return self.functions.get(qual)

    def visit_Call(self, node: ast.Call) -> None:
        entry = self._current()
        if entry is not None:
            sink = _sink_target(node, self.names)
            if sink is not None:
                entry["sinks"].append([sink, node.lineno])
            resolved = _resolve(node.func, self.names)
            if resolved is not None:
                entry["calls"].append(resolved)
            elif isinstance(node.func, ast.Name):
                # A bare local name: a same-module function, or a
                # builtin (harmless — it resolves to nothing later).
                entry["calls"].append(f"{self.module}.{node.func.id}")
            elif (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                entry["calls"].append(f"self.{node.func.attr}")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        entry = self._current()
        if (
            entry is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            entry["self_refs"].append(node.attr)
        self.generic_visit(node)


def module_facts(module: LintModule) -> Optional[Dict[str, Any]]:
    """Distill one parsed module into its JSON-serializable facts.

    Returns None for files outside a ``repro`` package root — the flow
    rules scope on package-relative paths, so such files contribute
    nothing to the project model.
    """
    if module.rel is None:
        return None
    dotted = module_dotted_name(module.rel)
    edges, names = resolve_imports(module.tree, module.rel)
    visitor = _FactsVisitor(names, dotted)
    visitor.visit(module.tree)

    counters: Dict[str, int] = {}
    event_time_ops: List[List[Any]] = []
    event_constructions: List[List[Any]] = []
    contacts_reads: List[List[int]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and node.attr == "contacts":
            contacts_reads.append([node.lineno, node.col_offset])
        if isinstance(node, ast.AugAssign):
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "COUNTERS"
            ):
                counters.setdefault(target.attr, target.lineno)
        elif isinstance(node, (ast.BinOp, ast.Compare)):
            operands: List[ast.AST] = []
            if isinstance(node, ast.BinOp):
                operands = [node.left, node.right]
            else:
                operands = [node.left, *node.comparators]
            for operand in operands:
                if _is_event_like(operand):
                    event_time_ops.append(
                        [node.lineno, node.col_offset, ast.unparse(operand)]
                    )
                    break
        elif isinstance(node, ast.Call):
            resolved = _resolve(node.func, names)
            if resolved is not None and any(
                resolved.endswith(suffix)
                for suffix in _EVENT_CLASS_SUFFIXES
            ):
                event_constructions.append(
                    [node.lineno, node.col_offset, resolved.rsplit(".", 1)[-1]]
                )

    public_defs: List[List[Any]] = []
    dunder_all: Optional[List[str]] = None
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                public_defs.append([node.name, node.lineno])
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__":
                    value = node.value
                    if value is not None:
                        dunder_all = _literal_str_tuple(value)
                elif not target.id.startswith("_"):
                    public_defs.append([target.id, node.lineno])

    return {
        "rel": module.rel,
        "path": module.path,
        "module": dotted,
        "package": module.package,
        "suppressions": {
            str(line): sorted(rules)
            for line, rules in module.suppressions.items()
        },
        "imports": edges,
        "import_names": names,
        "dunder_all": dunder_all,
        "public_defs": public_defs,
        "functions": visitor.functions,
        "top_level_functions": visitor.top_level_functions,
        "classes": visitor.classes,
        "counters": counters,
        "counter_decls": _counter_decls(module.tree),
        "event_time_ops": event_time_ops,
        "event_constructions": event_constructions,
        "contacts_reads": contacts_reads,
    }


class ProjectModel:
    """Facts for every module of one lint invocation, indexed.

    Args:
        facts: per-module facts dicts (see :func:`module_facts`).  The
            first module seen for a given package-relative path wins;
            later duplicates (two source trees linted at once) are
            ignored for indexing but still checked by single-file
            rules upstream.
    """

    def __init__(self, facts: Sequence[Dict[str, Any]]) -> None:
        self.modules: List[Dict[str, Any]] = list(facts)
        self.by_rel: Dict[str, Dict[str, Any]] = {}
        self.by_module: Dict[str, Dict[str, Any]] = {}
        self.by_path: Dict[str, Dict[str, Any]] = {}
        for entry in self.modules:
            self.by_rel.setdefault(entry["rel"], entry)
            self.by_module.setdefault(entry["module"], entry)
            self.by_path[entry["path"]] = entry

    @classmethod
    def from_sources(
        cls, sources: Sequence[Tuple[str, str]]
    ) -> "ProjectModel":
        """Build a model from ``(path, source)`` pairs (test helper)."""
        facts = []
        for path, source in sources:
            fact = module_facts(LintModule.from_source(source, path))
            if fact is not None:
                facts.append(fact)
        return cls(facts)

    # -- call graph -----------------------------------------------------

    def function_node(
        self, entry: Dict[str, Any], qual: str
    ) -> Tuple[str, str]:
        """Stable identifier for one function: ``(rel, qualname)``."""
        return (entry["rel"], qual)

    def resolve_callee(
        self, caller_entry: Dict[str, Any], caller_qual: str, target: str
    ) -> Optional[Tuple[str, str]]:
        """Map one recorded call target onto a project function node.

        Resolution is conservative: ``self.m`` resolves within the
        caller's own class, dotted targets resolve through the module
        index (both ``pkg.mod.func`` and ``pkg.mod.Class.method``
        shapes); anything else is None.
        """
        if target.startswith("self."):
            method = target[len("self."):]
            if "." in caller_qual:
                cls_name = caller_qual.split(".", 1)[0]
                qual = f"{cls_name}.{method}"
                if qual in caller_entry["functions"]:
                    return (caller_entry["rel"], qual)
            return None
        module_part, _, func = target.rpartition(".")
        if not module_part:
            return None
        entry = self.by_module.get(module_part)
        if entry is not None and func in entry["functions"]:
            return (entry["rel"], func)
        # pkg.mod.Class.method
        mod_part, _, cls_name = module_part.rpartition(".")
        if mod_part:
            entry = self.by_module.get(mod_part)
            if entry is not None:
                qual = f"{cls_name}.{func}"
                if qual in entry["functions"]:
                    return (entry["rel"], qual)
        return None

    def suppressed(self, violation: Violation) -> bool:
        """Pragma lookup for project-rule violations."""
        entry = self.by_path.get(violation.path)
        if entry is None:
            return False
        table = entry["suppressions"]
        for lineno in (violation.line, violation.line - 1):
            if violation.rule_id in table.get(str(lineno), ()):
                return True
        return False


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Like :class:`~repro.analysis.framework.Rule`, but ``check``
    receives the :class:`ProjectModel` instead of a single module.
    """

    def check(self, project: ProjectModel) -> Iterator[Violation]:  # type: ignore[override]
        raise NotImplementedError

    def flag(
        self,
        entry: Dict[str, Any],
        line: int,
        message: str,
        column: int = 1,
    ) -> Violation:
        """A :class:`Violation` at an explicit location in ``entry``."""
        return Violation(
            rule_id=self.rule_id,
            path=entry["path"],
            line=line,
            column=column,
            message=message,
        )


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a rule to :data:`PROJECT_RULE_REGISTRY`."""
    if not cls.rule_id or not _RULE_ID.fullmatch(cls.rule_id):
        raise ValueError(f"rule id must match G2GNNN, got {cls.rule_id!r}")
    if cls.rule_id in PROJECT_RULE_REGISTRY:
        raise ValueError(f"duplicate project rule id {cls.rule_id}")
    PROJECT_RULE_REGISTRY[cls.rule_id] = cls
    return cls


def check_project(
    project: ProjectModel,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Run (selected) project rules over one model.

    Pragma-suppressed violations are dropped; the rest come back
    sorted by file, location, then rule id.
    """
    if rule_ids is None:
        selected = sorted(PROJECT_RULE_REGISTRY)
    else:
        selected = sorted(
            r for r in rule_ids if r in PROJECT_RULE_REGISTRY
        )
    found: List[Violation] = []
    for rule_id in selected:
        for violation in PROJECT_RULE_REGISTRY[rule_id]().check(project):
            if not project.suppressed(violation):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.column, v.rule_id))
    return found
