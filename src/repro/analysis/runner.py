"""Lint runner: file discovery, batch checking, report rendering.

The runner is what ``repro lint`` calls: it expands the given paths to
Python files (skipping caches and hidden directories), parses each one
into a :class:`~repro.analysis.framework.LintModule`, and runs the
registered rules.  Unparseable files are reported as ``G2G000``
violations rather than crashing the batch — a syntax error in one file
must not hide findings in the rest.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .framework import LintModule, Violation, check_module

PathLike = Union[str, Path]

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def iter_python_files(paths: Iterable[PathLike]) -> List[Path]:
    """Expand files/directories to a sorted, de-duplicated file list."""
    found = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(found)


def lint_source(
    source: str,
    path: str = "<string>",
    rel: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint one source string (``rel`` positions it inside ``repro``)."""
    return check_module(
        LintModule.from_source(source, path, rel=rel), rule_ids=select
    )


def lint_paths(
    paths: Iterable[PathLike],
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint every Python file under ``paths``.

    Returns violations sorted by file then location.  A file that does
    not parse contributes a single ``G2G000`` violation carrying the
    syntax error.
    """
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        try:
            module = LintModule.from_path(path)
        except SyntaxError as exc:
            violations.append(
                Violation(
                    rule_id="G2G000",
                    path=str(path),
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        violations.extend(check_module(module, rule_ids=select))
    return violations


def render_report(violations: Sequence[Violation]) -> str:
    """Human-readable multi-line report with a trailing summary."""
    if not violations:
        return "no G2G violations"
    lines = [v.render() for v in violations]
    by_rule: dict = {}
    for v in violations:
        by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
    summary = ", ".join(
        f"{count} x {rule_id}" for rule_id, count in sorted(by_rule.items())
    )
    lines.append(f"{len(violations)} violations ({summary})")
    return "\n".join(lines)
