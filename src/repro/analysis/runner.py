"""Lint runner: discovery, caching, fan-out, project analysis.

The runner is what ``repro lint`` calls.  The original single-file
pipeline (expand paths, parse, run registered rules) is still here as
:func:`lint_paths` / :func:`lint_source`; :func:`lint_tree` is the
production entry point layering on top of it:

* **Robust diagnostics.**  A file that does not parse is reported as a
  normal ``E999`` diagnostic (``path:line:col: E999 ...``) instead of
  crashing the batch — a syntax error in one file must not hide
  findings in the rest, and must itself fail the lint.
* **Incremental cache.**  With a cache directory, per-file findings
  and project facts are keyed on content hashes
  (:mod:`repro.analysis.cache`); a warm run over an unchanged tree
  parses nothing.
* **Multiprocess fan-out.**  ``jobs > 1`` parses and checks uncached
  files in a process pool; results are deterministic regardless of
  worker count because everything is re-sorted afterwards.
* **Project mode.**  ``project=True`` assembles the per-file facts
  into a :class:`~repro.analysis.project.ProjectModel` and runs the
  whole-program rules G2G008–G2G012 on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .cache import LintCache, file_sha256
from .framework import (
    RULE_REGISTRY,
    LintModule,
    Violation,
    check_module,
)
from .project import (
    PROJECT_RULE_REGISTRY,
    ProjectModel,
    check_project,
    module_facts,
)

PathLike = Union[str, Path]

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})

#: Diagnostic id for unparseable files (pycodestyle's historical id for
#: syntax errors, which editors and CI annotators already understand).
SYNTAX_ERROR_ID = "E999"


def iter_python_files(paths: Iterable[PathLike]) -> List[Path]:
    """Expand files/directories to a sorted, de-duplicated file list."""
    found = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(found)


def _syntax_violation(path: str, exc: Exception) -> Violation:
    if isinstance(exc, SyntaxError):
        line = exc.lineno or 1
        column = (exc.offset or 0) or 1
        msg = exc.msg or "invalid syntax"
    else:
        # Undecodable or unreadable content (null bytes raise
        # SyntaxError on modern Pythons but ValueError on older ones).
        line, column, msg = 1, 1, str(exc)
    return Violation(
        rule_id=SYNTAX_ERROR_ID,
        path=path,
        line=line,
        column=column,
        message=f"file does not parse: {msg}",
    )


def _check_file(path: Path) -> Tuple[List[Violation], Optional[Dict[str, Any]]]:
    """Parse + single-file rules + facts for one file.

    Returns ``(violations, facts)``; an unparseable file yields one
    ``E999`` violation and no facts.
    """
    try:
        module = LintModule.from_path(path)
    except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
        return [_syntax_violation(str(path), exc)], None
    return check_module(module), module_facts(module)


def _process_file(path_str: str) -> Dict[str, Any]:
    """Process-pool worker: everything picklable, nothing shared."""
    path = Path(path_str)
    sha = file_sha256(path)
    violations, facts = _check_file(path)
    return {
        "path": path_str,
        "sha": sha,
        "violations": [
            {
                "rule_id": v.rule_id,
                "path": v.path,
                "line": v.line,
                "column": v.column,
                "message": v.message,
            }
            for v in violations
        ],
        "facts": facts,
    }


def lint_source(
    source: str,
    path: str = "<string>",
    rel: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint one source string (``rel`` positions it inside ``repro``)."""
    return check_module(
        LintModule.from_source(source, path, rel=rel), rule_ids=select
    )


def lint_paths(
    paths: Iterable[PathLike],
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint every Python file under ``paths`` (single-file rules only).

    Returns violations sorted by file then location.  A file that does
    not parse contributes a single ``E999`` diagnostic carrying the
    syntax error.
    """
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        try:
            module = LintModule.from_path(path)
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            violations.append(_syntax_violation(str(path), exc))
            continue
        violations.extend(check_module(module, rule_ids=select))
    return violations


@dataclass
class LintRun:
    """The result of one :func:`lint_tree` invocation."""

    violations: List[Violation]
    stats: Dict[str, int] = field(default_factory=dict)

    def stats_line(self) -> str:
        """``lint stats: files=N parsed=P cached=C ...`` for --stats."""
        inner = " ".join(f"{k}={v}" for k, v in sorted(self.stats.items()))
        return f"lint stats: {inner}"


def split_select(
    select: Optional[Sequence[str]],
) -> Tuple[Optional[List[str]], Optional[List[str]]]:
    """Partition a ``--select`` list into (single-file, project) ids.

    Raises ValueError for ids in neither registry.  ``None`` stays
    ``None`` (= everything).
    """
    if select is None:
        return None, None
    single: List[str] = []
    project: List[str] = []
    for rule_id in select:
        known = False
        if rule_id in RULE_REGISTRY:
            single.append(rule_id)
            known = True
        if rule_id in PROJECT_RULE_REGISTRY:
            project.append(rule_id)
            known = True
        if not known:
            all_ids = sorted(RULE_REGISTRY) + sorted(PROJECT_RULE_REGISTRY)
            raise ValueError(
                f"unknown rule {rule_id!r}; known: {', '.join(all_ids)}"
            )
    return single, project


def lint_tree(
    paths: Iterable[PathLike],
    select: Optional[Sequence[str]] = None,
    project: bool = False,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
) -> LintRun:
    """The full pipeline: cache -> (parallel) check -> project rules.

    Args:
        paths: files/directories to lint.
        select: rule ids to run (single-file and/or project); None
            means every registered rule (project ones only when
            ``project=True``).
        project: also run the whole-program rules G2G008–G2G012.
        jobs: process-pool width for uncached files (1 = in-process).
        cache_dir: directory for the incremental cache; None disables
            caching entirely (no hidden writes).
    """
    single_select, project_select = split_select(select)
    files = iter_python_files(paths)
    cache = LintCache(Path(cache_dir)) if cache_dir is not None else None

    stats = {"files": len(files), "parsed": 0, "cached": 0}
    per_file: Dict[str, List[Violation]] = {}
    facts_list: List[Dict[str, Any]] = []

    pending: List[Path] = []
    for path in files:
        if cache is not None:
            sha = file_sha256(path)
            entry = cache.lookup(path, sha)
            if entry is not None:
                stats["cached"] += 1
                per_file[str(path)] = cache.cached_violations(entry)
                if entry.get("facts") is not None:
                    facts_list.append(entry["facts"])
                continue
        pending.append(path)

    def _record(
        path: Path,
        sha: Optional[str],
        violations: List[Violation],
        facts: Optional[Dict[str, Any]],
    ) -> None:
        stats["parsed"] += 1
        per_file[str(path)] = violations
        if facts is not None:
            facts_list.append(facts)
        if cache is not None:
            cache.store(
                path,
                sha if sha is not None else file_sha256(path),
                violations,
                facts,
            )

    if jobs > 1 and len(pending) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(
                _process_file, [str(p) for p in pending]
            ):
                _record(
                    Path(result["path"]),
                    result["sha"],
                    [
                        Violation(
                            rule_id=d["rule_id"],
                            path=d["path"],
                            line=d["line"],
                            column=d["column"],
                            message=d["message"],
                        )
                        for d in result["violations"]
                    ],
                    result["facts"],
                )
    else:
        for path in pending:
            violations, facts = _check_file(path)
            _record(path, None, violations, facts)

    if cache is not None:
        cache.save()

    # Filter the (full-rule-set) per-file findings down to --select.
    # E999 always passes: a parse failure is a failure regardless of
    # which rules were requested.
    wanted = set(single_select) if single_select is not None else None
    violations: List[Violation] = []
    for path in files:
        for v in per_file.get(str(path), ()):
            if (
                wanted is None
                or v.rule_id in wanted
                or v.rule_id == SYNTAX_ERROR_ID
            ):
                violations.append(v)

    if project:
        model = ProjectModel(facts_list)
        project_violations = check_project(model, rule_ids=project_select)
        stats["project_findings"] = len(project_violations)
        violations.extend(project_violations)

    violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule_id))
    return LintRun(violations=violations, stats=stats)


def render_report(violations: Sequence[Violation]) -> str:
    """Human-readable multi-line report with a trailing summary."""
    if not violations:
        return "no G2G violations"
    lines = [v.render() for v in violations]
    by_rule: dict = {}
    for v in violations:
        by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
    summary = ", ".join(
        f"{count} x {rule_id}" for rule_id, count in sorted(by_rule.items())
    )
    lines.append(f"{len(violations)} violations ({summary})")
    return "\n".join(lines)
