"""AST lint framework: violations, rules, pragmas, module model.

The framework is deliberately tiny — a rule is a class with a
``rule_id``, a one-line ``summary``, and a ``check`` generator over a
parsed :class:`LintModule`.  What it adds over a bare ``ast.walk``:

* **Registry.** ``@register_rule`` collects rule classes into
  :data:`RULE_REGISTRY` so the runner and the CLI's ``--select`` /
  ``--list-rules`` see one authoritative rule set.
* **Package scoping.** Most invariants only bind inside the simulation
  core (``sim/``, ``core/``, ``crypto/``, …).  :class:`LintModule`
  locates the ``repro`` package root inside any file path — including
  test fixtures laid out under a literal ``repro/`` directory — and
  exposes the package-relative path for rules to scope on.
* **Suppressions.** A violation on line *N* is silenced by a pragma
  comment on line *N* or *N - 1*::

      # g2g: allow(G2G002: reason why this nondeterminism is safe)
      # g2g: allow-broad-except(reason)          (alias for G2G006)

  Pragmas carry their justification in the source, next to the code
  they excuse, where review sees it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Every registered rule class, keyed by rule id (``G2G001`` …).
RULE_REGISTRY: Dict[str, Type["Rule"]] = {}

#: The body runs greedily to the *last* closing paren on the line, so
#: a justification may itself contain parens, e.g.
#: ``# g2g: allow(G2G002: fallback (rare) path)``.
_PRAGMA = re.compile(
    r"#\s*g2g:\s*allow(?P<broad>-broad-except)?\s*\((?P<body>.*)\)"
)
_RULE_ID = re.compile(r"G2G\d{3}")


@dataclass(frozen=True)
class Violation:
    """One rule finding at a source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str

    def render(self) -> str:
        """``path:line:col: RULEID message`` (clickable in editors)."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} {self.message}"
        )


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed by a pragma on that line.

    ``# g2g: allow(G2G001, G2G003: reason)`` names one or more rule
    ids; ``# g2g: allow-broad-except(reason)`` is shorthand for
    ``allow(G2G006)`` with the reason as the whole body.  Pragmas with
    no recognizable rule id suppress nothing (the underlying violation
    still fires, which is how a typo surfaces).
    """
    table: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        if match.group("broad") is not None:
            rule_ids = {"G2G006"}
        else:
            rule_ids = set(_RULE_ID.findall(match.group("body")))
        if rule_ids:
            table.setdefault(lineno, set()).update(rule_ids)
    return table


@dataclass
class LintModule:
    """One parsed source file plus the context rules scope on.

    Attributes:
        path: filesystem path (display only).
        source: full source text.
        tree: parsed AST.
        rel: path relative to the ``repro`` package root, POSIX-style
            (``"sim/node.py"``), or None when the file is not under a
            ``repro`` directory — package-scoped rules skip such files.
        suppressions: line -> suppressed rule ids (see
            :func:`parse_suppressions`).
    """

    path: str
    source: str
    tree: ast.Module
    rel: Optional[str]
    suppressions: Dict[int, Set[str]]

    @classmethod
    def from_source(
        cls, source: str, path: str, rel: Optional[str] = None
    ) -> "LintModule":
        """Parse ``source``; ``rel`` overrides path-derived packaging."""
        if rel is None:
            rel = package_relative(Path(path))
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            rel=rel,
            suppressions=parse_suppressions(source),
        )

    @classmethod
    def from_path(cls, path: Path) -> "LintModule":
        return cls.from_source(path.read_text(), str(path))

    @property
    def package(self) -> Optional[str]:
        """First package segment under ``repro`` (``"sim"``), if any."""
        if self.rel is None or "/" not in self.rel:
            return None
        return self.rel.split("/", 1)[0]

    def in_packages(self, names: Sequence[str]) -> bool:
        """Whether this module lives under one of the named packages."""
        return self.package in names

    def suppressed(self, violation: Violation) -> bool:
        """Whether a pragma on the line (or the line above) covers it."""
        for lineno in (violation.line, violation.line - 1):
            if violation.rule_id in self.suppressions.get(lineno, ()):
                return True
        return False


def package_relative(path: Path) -> Optional[str]:
    """Path below the innermost ``repro`` directory, or None.

    ``src/repro/sim/node.py`` -> ``"sim/node.py"``; fixture trees that
    mirror the layout (``tests/fixtures/lint/repro/sim/bad.py``)
    classify identically, so scoped rules are testable.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            rel = parts[i + 1:]
            return "/".join(rel) if rel else None
    return None


class Rule:
    """Base class: one statically checkable invariant.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check` as a generator of :class:`Violation`.  Rules are
    stateless — one instance may lint many modules.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, module: LintModule) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Violation:
        """A :class:`Violation` at ``node``'s location."""
        return Violation(
            rule_id=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.rule_id or not _RULE_ID.fullmatch(cls.rule_id):
        raise ValueError(f"rule id must match G2GNNN, got {cls.rule_id!r}")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def check_module(
    module: LintModule, rule_ids: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run (selected) registered rules over one module.

    Violations silenced by pragmas are dropped; the rest come back
    sorted by location then rule id.
    """
    selected = sorted(rule_ids) if rule_ids is not None else sorted(RULE_REGISTRY)
    found: List[Violation] = []
    for rule_id in selected:
        try:
            rule_cls = RULE_REGISTRY[rule_id]
        except KeyError:
            raise ValueError(
                f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULE_REGISTRY))}"
            ) from None
        for violation in rule_cls().check(module):
            if not module.suppressed(violation):
                found.append(violation)
    found.sort(key=lambda v: (v.line, v.column, v.rule_id))
    return found


# -- shared AST helpers used by the concrete rules ----------------------


def imported_origins(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every top-level-style import.

    ``import random as rnd`` maps ``rnd -> random``; ``from random
    import Random`` maps ``Random -> random.Random``.  Relative imports
    are skipped (rules only care about stdlib origins).
    """
    origins: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origins[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                origins[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return origins


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call(
    node: ast.AST, origins: Dict[str, str]
) -> Optional[str]:
    """Fully qualified dotted name of a callable reference.

    The chain's first segment is rewritten through the module's import
    table, so ``rnd.randint`` (after ``import random as rnd``) resolves
    to ``random.randint`` and a local ``self.rng.randint`` resolves to
    None (its root is not an import).
    """
    name = dotted_name(node)
    if name is None:
        return None
    head, _, tail = name.partition(".")
    origin = origins.get(head)
    if origin is None:
        return None
    return f"{origin}.{tail}" if tail else origin


def function_stack(tree: ast.Module) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield ``(node, enclosing function names)`` over the whole tree."""
    def walk(node: ast.AST, stack: Tuple[str, ...]) -> Iterator[
        Tuple[ast.AST, Tuple[str, ...]]
    ]:
        for child in ast.iter_child_nodes(node):
            yield child, stack
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(child, stack + (child.name,))
            else:
                yield from walk(child, stack)

    yield from walk(tree, ())
