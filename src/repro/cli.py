"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — one simulation run: trace × protocol × adversaries,
  printing the headline metrics (and the conviction list for G2G
  runs).
* ``experiment`` — regenerate one paper table/figure (fig3, fig4,
  fig5, fig7, fig8, table1) and print its text rendering.
* ``trace`` — generate a synthetic evaluation trace, print its
  profile, and optionally save it in the CRAWDAD-style text format.
* ``communities`` — run k-clique community detection on a trace.
* ``scenarios`` — run a campaign of mixed-adversary / churn / energy
  scenarios and emit the campaign matrix (see docs/scenarios.md).
* ``telemetry`` — summarize or validate exported telemetry JSONL.
* ``perf`` — time the relay-loop hot-path benchmark and write
  ``BENCH_hotpath.json``.
* ``scale-bench`` — sweep synthetic streaming sources across node
  scales and write the nodes-vs-wall / nodes-vs-RSS curves to
  ``BENCH_scale.json``.
* ``lint`` — run the G2G determinism/invariant lint rules over source
  trees (see ``docs/development.md``).

The run-shaped commands (``simulate``, ``sweep``, ``trace``,
``communities``) share their ``--trace``/``--protocol``/``--seed``
flags via common parent parsers, and ``--workers``/``--telemetry-dir``
are spelled identically wherever they appear — one flag vocabulary
across the whole CLI.

Examples::

    python -m repro simulate --trace infocom05 --protocol g2g_epidemic \
        --adversary dropper --count 10 --telemetry-dir telemetry/
    python -m repro experiment fig8 --workers 4
    python -m repro telemetry summarize telemetry/
    python -m repro trace --trace cambridge06 --out cambridge06.contacts
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .adversaries import strategy_population
from .experiments import LABELS, PROTOCOLS
from .social import CommunityMap
from .traces import TraceProfile, save_trace, trace_by_name


def _trace_parent() -> argparse.ArgumentParser:
    """Shared ``--trace`` flag (identical on every run-shaped command)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace", choices=("infocom05", "cambridge06"), default="infocom05",
        help="evaluation trace (default: infocom05)",
    )
    return parent


def _protocol_parent() -> argparse.ArgumentParser:
    """Shared ``--protocol`` flag (identical on simulate and sweep)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="g2g_epidemic",
        help="catalog protocol name (default: g2g_epidemic)",
    )
    return parent


def _seed_parent(default: int) -> argparse.ArgumentParser:
    """Shared ``--seed`` flag; the default varies per command."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--seed", type=int, default=default,
        help=f"master seed (default: {default})",
    )
    return parent


def _workers_parent() -> argparse.ArgumentParser:
    """Shared ``--workers`` flag (identical on experiment and sweep)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers", type=int, default=1,
        help="simulation worker processes (1 = sequential; parallel "
        "output is bit-identical to sequential)",
    )
    return parent


def _provider_parent() -> argparse.ArgumentParser:
    """Shared ``--provider`` flag (simulate and perf)."""
    from .crypto import TIER_NAMES

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--provider", choices=TIER_NAMES, default=None,
        help="crypto provider tier for Give2Get protocols: real "
        "(from-scratch RSA, slow), simulated (default), or accounting "
        "(zero hashing, identical results; see docs/simulator.md)",
    )
    return parent


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared ``--telemetry-dir`` flag (simulate/experiment/sweep)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="append per-run telemetry JSONL records under this "
        "directory (see docs/observability.md)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Give2Get (ICDCS 2010) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="run one simulation",
        parents=[
            _trace_parent(), _protocol_parent(), _seed_parent(1),
            _telemetry_parent(), _provider_parent(),
        ],
    )
    simulate.add_argument(
        "--adversary",
        default=None,
        help="deviation kind (dropper/liar/cheater, optionally "
        "+ _with_outsiders)",
    )
    simulate.add_argument("--count", type=int, default=0,
                          help="number of deviating nodes")
    simulate.add_argument(
        "--json", action="store_true",
        help="print the run as one JSON record (the same schema as "
        "the telemetry JSONL export) instead of the human summary",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure",
        parents=[_workers_parent(), _telemetry_parent()],
    )
    experiment.add_argument(
        "name",
        choices=(
            "fig3", "fig4", "fig5", "fig7", "fig8", "table1", "ablations",
        ),
    )
    experiment.add_argument(
        "--full", action="store_true", help="full paper grids (slow)"
    )
    experiment.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="per-run result cache directory "
        "(default: .repro-cache)",
    )
    experiment.add_argument(
        "--no-cache", action="store_true",
        help="bypass the run cache entirely (no reads, no writes)",
    )

    trace = sub.add_parser(
        "trace", help="generate and inspect a trace",
        parents=[_trace_parent(), _seed_parent(0)],
    )
    trace.add_argument("--out", default=None, help="save to this path")

    sweep = sub.add_parser(
        "sweep", help="run an archived, resumable adversary sweep",
        parents=[
            _trace_parent(), _protocol_parent(), _workers_parent(),
            _telemetry_parent(),
        ],
    )
    sweep.add_argument("--adversary", default="dropper")
    sweep.add_argument(
        "--counts", default="0,10,20,30",
        help="comma-separated adversary counts",
    )
    sweep.add_argument("--seeds", default="1,2", help="comma-separated seeds")
    sweep.add_argument("--archive", default="sweep-runs",
                       help="archive directory")
    sweep.add_argument("--csv", default=None, help="also export CSV here")

    telemetry = sub.add_parser(
        "telemetry", help="summarize or validate telemetry exports"
    )
    telemetry.add_argument(
        "action", choices=("summarize", "validate"),
        help="summarize: merge every *.jsonl under DIR and print a "
        "Prometheus-style text summary; validate: schema-check every "
        "record",
    )
    telemetry.add_argument("dir", help="directory of telemetry JSONL files")
    telemetry.add_argument(
        "--json", action="store_true",
        help="(summarize) print the merged snapshot as JSON instead "
        "of Prometheus-style text",
    )

    perf = sub.add_parser(
        "perf", help="run the hot-path benchmark and write BENCH_hotpath.json",
        parents=[_provider_parent()],
    )
    perf.add_argument(
        "--out", default="BENCH_hotpath.json",
        help="report path (default: BENCH_hotpath.json)",
    )
    perf.add_argument(
        "--repeats", type=int, default=5,
        help="timed repetitions; the report keeps the best",
    )
    perf.add_argument(
        "--no-profile", action="store_true",
        help="skip the cProfile-instrumented repetition",
    )

    scale = sub.add_parser(
        "scale-bench",
        help="sweep streaming sources across node scales and write "
        "BENCH_scale.json",
        parents=[_seed_parent(0)],
    )
    scale.add_argument(
        "--scales", default=None, metavar="N,N,...",
        help="comma-separated node counts for the nodes_vs sweep "
        "(default: 1000,10000,100000,1000000)",
    )
    scale.add_argument(
        "--durations", default=None, metavar="S,S,...",
        help="comma-separated stream durations (seconds) for the "
        "fixed-node contacts_vs sweep "
        "(default: 3600,14400,43200,86400)",
    )
    scale.add_argument(
        "--contacts-nodes", type=int, default=10_000,
        help="universe size of the contacts_vs sweep (default: 10000)",
    )
    scale.add_argument(
        "--out", default="BENCH_scale.json",
        help="report path (default: BENCH_scale.json)",
    )
    scale.add_argument(
        "--timeout", type=float, default=1_800.0,
        help="per-point subprocess timeout in seconds (default: 1800)",
    )

    lint = sub.add_parser(
        "lint", help="run the G2G determinism/invariant lint rules"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all), "
        "e.g. G2G001,G2G006",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--project", action="store_true",
        help="also run the whole-program flow rules (G2G008-G2G013)",
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        dest="fmt", help="report format (default: text)",
    )
    lint.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from the current findings "
        "(requires --baseline) and exit 0",
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for parsing/checking (default: 1)",
    )
    lint.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="incremental lint cache directory (default: no cache)",
    )
    lint.add_argument(
        "--stats", action="store_true",
        help="print a 'lint stats: ...' line (files/parsed/cached)",
    )

    communities = sub.add_parser(
        "communities", help="k-clique community detection",
        parents=[_trace_parent(), _seed_parent(0)],
    )
    communities.add_argument("--k", type=int, default=3)
    communities.add_argument("--quantile", type=float, default=0.9)

    scenarios = sub.add_parser(
        "scenarios", help="run or inspect adversary campaigns"
    )
    scenarios_sub = scenarios.add_subparsers(
        dest="scenarios_action", required=True
    )
    scenarios_run = scenarios_sub.add_parser(
        "run", help="execute a campaign and write its matrix",
        parents=[_workers_parent(), _telemetry_parent()],
    )
    source = scenarios_run.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--spec", default=None, metavar="FILE",
        help="campaign spec file: a JSON scenario object or a list "
        "of them (see docs/scenarios.md)",
    )
    source.add_argument(
        "--preset", default=None,
        help="named preset campaign (see `repro scenarios run "
        "--preset help`)",
    )
    scenarios_run.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the campaign matrix JSON here",
    )
    scenarios_run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="per-run result cache directory (default: .repro-cache)",
    )
    scenarios_run.add_argument(
        "--no-cache", action="store_true",
        help="bypass the run cache entirely (no reads, no writes)",
    )
    scenarios_report = scenarios_sub.add_parser(
        "report", help="render a previously written campaign matrix"
    )
    scenarios_report.add_argument("matrix", help="campaign matrix JSON file")
    scenarios_report.add_argument(
        "--json", action="store_true",
        help="print the matrix document instead of the table",
    )
    return parser


def cmd_simulate(args) -> int:
    from . import api
    from .experiments import evaluation_community, evaluation_trace
    from .telemetry.export import record_line, run_record

    strategies = None
    misbehaving = ()
    if args.adversary and args.count > 0:
        trace = evaluation_trace(args.trace)
        community = evaluation_community(args.trace)
        strategies, misbehaving = strategy_population(
            trace.nodes, args.adversary, args.count,
            seed=args.seed, community=community,
        )
        if not args.json:
            print(
                f"planted {args.count} x {args.adversary}: "
                f"nodes {list(misbehaving)}"
            )
    try:
        results = api.run(
            args.trace,
            args.protocol,
            seed=args.seed,
            strategies=strategies,
            telemetry=args.telemetry_dir,
            provider=args.provider,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(record_line(run_record(results)))
        return 0
    print(f"protocol : {LABELS[args.protocol]} on {args.trace}")
    print(f"messages : {results.generated} generated, "
          f"{results.delivered} delivered ({results.success_rate:.1%})")
    print(f"delay    : mean {results.mean_delay / 60:.1f} min, "
          f"median {results.median_delay / 60:.1f} min")
    print(f"cost     : {results.cost:.2f} replicas/message")
    print(f"energy   : {results.total_energy:.1f} J network-wide")
    if misbehaving:
        print(
            f"detection: {results.detection_rate(misbehaving):.0%} of "
            f"misbehaving nodes convicted, "
            f"{len(results.false_positives(misbehaving))} false positives"
        )
        for offender, record in sorted(results.first_detections().items()):
            print(
                f"  node {offender} convicted as {record.deviation} "
                f"by node {record.detector} at {record.time / 60:.0f} min"
            )
    if args.telemetry_dir:
        print(
            f"telemetry: appended to "
            f"{os.path.join(args.telemetry_dir, 'runs.jsonl')}"
        )
    return 0


def execution_options(args) -> "ExecutionOptions":
    """Build :class:`ExecutionOptions` from the experiment CLI flags."""
    from .experiments import ExecutionOptions, RunCache, RunReport
    from .experiments.cache import DEFAULT_CACHE_DIR
    from .telemetry.export import TelemetryCollector

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
        try:
            cache = RunCache(cache_dir)
        except OSError as exc:
            raise SystemExit(
                f"error: unusable cache directory {cache_dir!r}: {exc}"
            )
    telemetry = None
    if getattr(args, "telemetry_dir", None):
        telemetry = TelemetryCollector()
    return ExecutionOptions(
        workers=max(1, args.workers), cache=cache, report=RunReport(),
        telemetry=telemetry,
    )


def cmd_experiment(args) -> int:
    from .experiments import ablations, fig3, fig4, fig5, fig7, fig8, table1

    quick = not args.full
    options = execution_options(args)
    if args.name == "fig3":
        for figure in fig3.run(quick=quick, options=options).values():
            print(figure.render())
    elif args.name == "fig4":
        for detection in fig4.run(quick=quick, options=options).values():
            print(detection.figure.render())
            for label, rate in detection.detection_rates.items():
                print(f"detection probability [{label}]: {rate:.1%}")
    elif args.name == "fig5":
        for figure in fig5.run(quick=quick, options=options).values():
            print(figure.render())
    elif args.name == "fig7":
        for figure in fig7.run(quick=quick, options=options).values():
            print(figure.render())
    elif args.name == "fig8":
        for panel in fig8.run(quick=quick, options=options).values():
            print(panel.render())
    elif args.name == "ablations":
        print(ablations.fanout_sweep(options=options).render())
        print(ablations.delta2_sweep(options=options).render())
        print(ablations.timeframe_sweep(options=options).render())
        print(ablations.buffer_capacity_sweep(options=options).render())
    else:
        print(table1.run(quick=quick, options=options).render())
    if options.report is not None and options.report.total:
        cache_note = ""
        if options.cache is not None:
            cache_note = f" [cache: {options.cache.stats.summary()}]"
        print(f"-- {options.report.summary()}{cache_note}")
    if options.telemetry is not None and args.telemetry_dir:
        path = os.path.join(args.telemetry_dir, f"{args.name}.jsonl")
        written = options.telemetry.write_jsonl(path)
        skipped = options.telemetry.skipped
        print(
            f"telemetry: {written} run records -> {path}"
            + (f" ({skipped} cache hits without telemetry)" if skipped else "")
        )
    return 0


def cmd_trace(args) -> int:
    synthetic = trace_by_name(args.trace, seed=args.seed)
    print(TraceProfile.of(synthetic.trace).describe())
    truth = synthetic.assignment
    print(
        f"  ground-truth communities: "
        f"{[len(truth.members(c)) for c in range(truth.num_communities)]}, "
        f"travelers {list(truth.travelers)}"
    )
    if args.out:
        save_trace(synthetic.trace, args.out)
        print(f"  saved to {args.out}")
    return 0


def cmd_sweep(args) -> int:
    from .experiments.parallel import ExecutionOptions
    from .experiments.sweeps import SweepRunner, dropper_grid
    from .telemetry.export import TelemetryCollector

    counts = tuple(int(c) for c in args.counts.split(","))
    seeds = tuple(int(s) for s in args.seeds.split(","))
    sweep_name = f"{args.trace}-{args.protocol}-{args.adversary}"
    runner = SweepRunner(
        archive_dir=args.archive,
        sweep=sweep_name,
        on_result=lambda spec, results, cached: print(
            f"  [{'cached' if cached else 'ran   '}] {spec.spec_id}: "
            f"success {results.success_rate:.1%}, "
            f"{len(results.detections)} PoMs"
        ),
    )
    specs = dropper_grid(
        args.trace, args.protocol, counts=counts, seeds=seeds,
        deviation=args.adversary,
    )
    print(f"sweep {sweep_name}: {len(specs)} runs -> {runner.path_for(specs[0]).parent}")
    options = ExecutionOptions(workers=max(1, args.workers))
    outcomes = runner.run_all(specs, options=options)
    if args.telemetry_dir:
        collector = TelemetryCollector()
        for spec in specs:
            collector.add(outcomes[spec])
        path = os.path.join(args.telemetry_dir, "sweep.jsonl")
        written = collector.write_jsonl(path)
        skipped = collector.skipped
        print(
            f"telemetry: {written} run records -> {path}"
            + (f" ({skipped} archived runs without telemetry)"
               if skipped else "")
        )
    if args.csv:
        written = runner.summary_csv(args.csv)
        print(f"wrote {written} summary rows to {args.csv}")
    return 0


def cmd_telemetry(args) -> int:
    from .telemetry.export import (
        read_jsonl,
        summarize_dir,
        to_prometheus,
        validate_record,
    )

    if not os.path.isdir(args.dir):
        raise SystemExit(f"error: not a directory: {args.dir}")
    if args.action == "validate":
        files = sorted(
            entry for entry in os.listdir(args.dir)
            if entry.endswith(".jsonl")
        )
        total = 0
        problems = 0
        for entry in files:
            path = os.path.join(args.dir, entry)
            for lineno, record in enumerate(read_jsonl(path), start=1):
                total += 1
                for problem in validate_record(record):
                    problems += 1
                    print(f"{path}:{lineno}: {problem}")
        if problems:
            print(f"{total} records, {problems} problems")
            return 1
        print(f"{total} records valid ({len(files)} files)")
        return 0
    try:
        summary = summarize_dir(args.dir)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"telemetry summary: {summary['runs']} runs "
        f"from {summary['files']} files"
    )
    print(to_prometheus(summary["telemetry"]), end="")
    return 0


def cmd_perf(args) -> int:
    from .perf import bench

    report = bench.write_report(
        args.out, repeats=args.repeats, profile=not args.no_profile,
        provider=args.provider,
    )
    optimized = report["optimized"]
    print(
        f"hot-path benchmark: {optimized['spec']['trace']} / g2g_epidemic / "
        f"seed {optimized['spec']['seed']} / "
        f"provider {optimized['spec']['provider']}"
    )
    print(
        f"  wall     : best {optimized['wall_seconds_best']:.3f} s of "
        f"{args.repeats} (baseline {report['baseline']['wall_seconds_best']:.3f} s, "
        f"{report['speedup_wall']:.2f}x)"
    )
    if "speedup_profiled" in report:
        print(
            f"  profiled : {optimized['profiled_seconds']:.3f} s "
            f"(baseline {report['baseline']['profiled_seconds']:.1f} s, "
            f"{report['speedup_profiled']:.2f}x)"
        )
    counters = optimized["counters"]
    print(
        f"  counters : {counters['relay_entries']} relay entries, "
        f"{counters['signatures']} signatures, "
        f"{counters['encodings']} encodings "
        f"({counters['encoding_cache_hits']} cache hits)"
    )
    tiers = report["tiers"]
    for tier in ("simulated", "accounting"):
        block = tiers[tier]
        print(
            f"  tier {tier:<10}: best {block['wall_seconds_best']:.3f} s, "
            f"digest {block['results_digest'][:12]}"
        )
    print(
        f"  tiers identical results: {tiers['identical_results']}, "
        f"build: {tiers['compiled']['status']}"
    )
    print(f"wrote {args.out}")
    return 0


def cmd_scale_bench(args) -> int:
    from .perf.scalebench import (
        DEFAULT_DURATIONS,
        DEFAULT_SCALES,
        scale_bench,
        write_report,
    )

    try:
        scales = (
            tuple(int(s) for s in args.scales.split(","))
            if args.scales else DEFAULT_SCALES
        )
        durations = (
            tuple(float(d) for d in args.durations.split(","))
            if args.durations else DEFAULT_DURATIONS
        )
    except ValueError as exc:
        raise SystemExit(f"error: bad --scales/--durations: {exc}")
    try:
        report = scale_bench(
            scales=scales,
            durations=durations,
            contacts_nodes=args.contacts_nodes,
            seed=args.seed,
            point_timeout=args.timeout,
            progress=True,
        )
    except RuntimeError as exc:
        raise SystemExit(f"error: {exc}")
    write_report(report, args.out)
    for point in report["nodes_vs"]:
        print(
            f"  {point['nodes']:>9} nodes: {point['contacts']:>9} contacts, "
            f"{point['wall_s']:>8.3f} s, "
            f"{point['peak_rss_bytes'] / 1e6:>8.1f} MB peak RSS"
        )
    for point in report["contacts_vs"]:
        print(
            f"  {point['duration_s'] / 3600:>6.1f} h stream @ "
            f"{point['nodes']} nodes: {point['contacts']:>9} contacts, "
            f"{point['wall_s']:>8.3f} s, "
            f"{point['peak_rss_bytes'] / 1e6:>8.1f} MB peak RSS"
        )
    print(f"wrote {args.out}")
    return 0


def cmd_lint(args) -> int:
    from pathlib import Path

    from .analysis import PROJECT_RULE_REGISTRY, RULE_REGISTRY, lint_tree
    from .analysis.baseline import apply_baseline, load_baseline, write_baseline
    from .analysis.output import render

    if args.list_rules:
        catalogue = dict(RULE_REGISTRY)
        catalogue.update(PROJECT_RULE_REGISTRY)
        for rule_id, rule_cls in sorted(catalogue.items()):
            scope = (
                " [--project]" if rule_id in PROJECT_RULE_REGISTRY else ""
            )
            print(f"{rule_id}  {' '.join(rule_cls.summary.split())}{scope}")
        return 0
    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    if args.update_baseline and not args.baseline:
        raise SystemExit("error: --update-baseline requires --baseline FILE")
    try:
        run = lint_tree(
            args.paths,
            select=select,
            project=args.project,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    violations = run.violations

    if args.update_baseline:
        count = write_baseline(Path(args.baseline), violations)
        print(f"baseline: recorded {count} findings in {args.baseline}")
        if args.stats:
            print(run.stats_line())
        return 0
    suppressed = 0
    if args.baseline:
        violations, suppressed = apply_baseline(
            violations, load_baseline(Path(args.baseline))
        )

    report = render(violations, args.fmt)
    if args.output:
        Path(args.output).write_text(
            report if report.endswith("\n") else report + "\n"
        )
        print(f"wrote {args.output}")
    else:
        print(report, end="" if report.endswith("\n") else "\n")
    if suppressed and args.fmt == "text" and not args.output:
        print(f"({suppressed} baselined findings suppressed)")
    if args.stats:
        print(run.stats_line())
    return 1 if violations else 0


def cmd_scenarios(args) -> int:
    from .scenarios import (
        CAMPAIGN_JSONL,
        PRESETS,
        ScenarioSpec,
        load_matrix,
        preset,
        render_matrix,
        run_campaign,
        write_matrix,
    )

    if args.scenarios_action == "report":
        try:
            matrix = load_matrix(args.matrix)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: {exc}")
        if args.json:
            print(json.dumps(matrix, indent=2, sort_keys=True))
        else:
            print(render_matrix(matrix))
        return 0

    if args.preset is not None:
        if args.preset == "help":
            for name in sorted(PRESETS):
                print(name)
            return 0
        try:
            specs = preset(args.preset)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}")
    else:
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: unreadable spec {args.spec!r}: {exc}")
        entries = data if isinstance(data, list) else [data]
        try:
            specs = [ScenarioSpec.from_dict(entry) for entry in entries]
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(f"error: invalid spec {args.spec!r}: {exc}")
    options = execution_options(args)
    total = sum(len(spec.seeds) for spec in specs)
    print(f"campaign: {len(specs)} scenarios, {total} runs")
    result = run_campaign(
        specs,
        workers=max(1, args.workers),
        cache=options.cache,
        telemetry_dir=args.telemetry_dir,
        on_progress=lambda done, n, cached: print(
            f"  [{done}/{n}] {'cached' if cached else 'ran'}"
        ),
    )
    print(render_matrix(result.matrix))
    print(f"matrix digest: {result.digest}")
    print(f"-- {result.report.summary()}")
    if args.out:
        write_matrix(args.out, result.matrix)
        print(f"wrote matrix to {args.out}")
    if args.telemetry_dir:
        print(
            f"telemetry: {len(result.records)} run records -> "
            f"{os.path.join(args.telemetry_dir, CAMPAIGN_JSONL)}"
        )
    return 0


def cmd_communities(args) -> int:
    synthetic = trace_by_name(args.trace, seed=args.seed)
    cmap = CommunityMap.detect(
        synthetic.trace, k=args.k, edge_quantile=args.quantile
    )
    print(
        f"{cmap.num_communities} communities "
        f"(k={args.k}, edge quantile {args.quantile}), "
        f"coverage {cmap.coverage():.0%}"
    )
    for i, community in enumerate(cmap.communities):
        print(f"  community {i}: {sorted(community)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "experiment": cmd_experiment,
        "trace": cmd_trace,
        "communities": cmd_communities,
        "sweep": cmd_sweep,
        "scenarios": cmd_scenarios,
        "telemetry": cmd_telemetry,
        "perf": cmd_perf,
        "scale-bench": cmd_scale_bench,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
