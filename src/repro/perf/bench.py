"""Hot-path benchmark: the measurements behind ``BENCH_hotpath.json``.

The headline benchmark is one full simulation run — cambridge06 /
G2G Epidemic Forwarding / seed 1 — timed best-of-N, with the
deterministic op-counter reading for the run alongside.  Wall-clock on
a shared container is noisy (identical code varies by 2x between
quiet and busy moments), so the report records three complementary
views:

* best-of-N wall seconds (the least-noise wall statistic),
* one cProfile-instrumented run (stable ranking of where time goes;
  profiling inflates absolute time roughly 3-4x, which is the
  methodology behind the pre-overhaul "~11 s" figure), and
* the op counters, which are bit-exact for a fixed seed and therefore
  comparable across machines.

The pre-overhaul reference numbers are frozen in :data:`BASELINE`
(they were measured at the commit recorded there; the optimized tree
cannot re-measure them).  Microbenchmarks isolate the three layers the
overhaul touched: wire encodings, HMAC signing, and the relay-candidate
buffer scan.

This module pulls in the whole experiment stack — import it lazily
(the CLI and the perf tests do), never from ``repro.perf.__init__``.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import platform
import random
import sys
import time
import timeit
from array import array
from bisect import bisect_right
from typing import Any, Dict, Optional

from ..core.g2g_epidemic import G2GEpidemicForwarding
from ..core.wire import ProofOfRelay
from ..crypto.hashing import digest, hmac_digest, prepare_hmac_key
from ..crypto.provider import SimulatedCryptoProvider
from ..experiments.setting import evaluation_trace, standard_config
from ..sim.engine import run_simulation
from ..sim.messages import Message, StoredCopy
from ..sim.node import NodeState
from ..sim.results import SimulationResults
from ..sim.serialize import results_to_dict
from .compiled import compiled_modules
from .counters import COUNTERS

#: The single-run benchmark spec.
BENCH_TRACE = "cambridge06"
BENCH_FAMILY = "epidemic"
BENCH_SEED = 1

#: Pre-overhaul reference, measured at the recorded commit on the same
#: container as the optimized numbers (best of 7 back-to-back runs;
#: the profiled figure is one cProfile run of the same spec).  The
#: run's metrics are part of the reference: the overhaul is only valid
#: while the optimized run reproduces them bit-for-bit.
BASELINE: Dict[str, Any] = {
    "commit": "d369a0f",
    "wall_seconds_best": 2.788,
    "wall_seconds_all": [3.262, 3.103, 3.369, 3.779, 2.899, 2.788, 2.846],
    "profiled_seconds": 10.6,
    "metrics": {
        "success_rate": 0.702733,
        "cost": 23.604214,
        "total_energy": 2550.404531,
    },
}

#: Pre-batching reference: the tree as of the recorded commit (TTL
#: timers on the scheduler, per-PoR verification, per-object relay
#: index scans), re-measured on the *same container* as the current
#: optimized numbers so the speedup compares like with like.  The
#: earlier container that produced the 1.011 s figure in older
#: reports was roughly twice as fast as this one — wall seconds only
#: compare within one machine, which is why this block exists.
#: Measured interleaved with the optimized tree (one best-of-4 batch
#: each per round, alternating) so load drift hits both sides alike.
SAME_MACHINE_BASELINE: Dict[str, Any] = {
    "commit": "53d4030",
    "wall_seconds_best": 2.110,
    "wall_seconds_all": [3.329, 2.608, 2.235, 2.131, 2.236, 2.110],
    "metrics": {
        "success_rate": 0.702733,
        "cost": 23.604214,
        "total_energy": 2550.404531,
    },
}


def run_single(
    trace_name: str = BENCH_TRACE,
    family: str = BENCH_FAMILY,
    seed: int = BENCH_SEED,
    provider: Optional[str] = None,
):
    """One timed benchmark run.

    Args:
        provider: crypto provider tier name (None = the protocol's
            default, the simulated tier).

    Returns:
        ``(elapsed_seconds, results, counter_diff)``.
    """
    trace = evaluation_trace(trace_name)
    config = standard_config(trace_name, family, seed)
    before = COUNTERS.snapshot()
    start = time.perf_counter()
    results = run_simulation(
        trace, G2GEpidemicForwarding(provider=provider), config
    )
    elapsed = time.perf_counter() - start
    return elapsed, results, COUNTERS.diff(before)


def results_digest(results: SimulationResults) -> str:
    """The determinism digest: sha256 of the canonical results JSON.

    Same formula as the golden/determinism test suites — the digest
    is what "bit-identical across tiers and builds" means.
    """
    payload = json.dumps(
        results_to_dict(results), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def hotpath_benchmark(
    repeats: int = 5,
    trace_name: str = BENCH_TRACE,
    family: str = BENCH_FAMILY,
    seed: int = BENCH_SEED,
    profile: bool = True,
    provider: Optional[str] = None,
) -> Dict[str, Any]:
    """Time the single-run benchmark best-of-``repeats``.

    Also runs one cProfile-instrumented repetition (unless ``profile``
    is False) so the report carries the same methodology as the
    recorded baseline's profiled figure.
    """
    evaluation_trace(trace_name)  # warm the lru-cached trace
    times = []
    results: Optional[SimulationResults] = None
    counters: Dict[str, int] = {}
    for _ in range(max(1, repeats)):
        elapsed, results, counters = run_single(
            trace_name, family, seed, provider
        )
        times.append(elapsed)
    report: Dict[str, Any] = {
        "spec": {
            "trace": trace_name,
            "family": family,
            "seed": seed,
            "provider": provider or "simulated",
        },
        "wall_seconds_best": round(min(times), 3),
        "wall_seconds_all": [round(t, 3) for t in times],
        "metrics": {
            "success_rate": round(results.success_rate, 6),
            "cost": round(results.cost, 6),
            "total_energy": round(results.total_energy, 6),
        },
        "results_digest": results_digest(results),
        "counters": counters,
    }
    if profile:
        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.runcall(run_single, trace_name, family, seed, provider)
        report["profiled_seconds"] = round(time.perf_counter() - start, 3)
    return report


def tiers_benchmark(
    repeats: int = 3,
    trace_name: str = BENCH_TRACE,
    family: str = BENCH_FAMILY,
    seed: int = BENCH_SEED,
    simulated: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Time the interpreted provider tiers on the benchmark spec.

    The simulated and accounting tiers are measured *interleaved* —
    one run of each per round, best-of-``repeats`` — so machine-load
    drift hits both tiers equally instead of flattering whichever ran
    first.  Their metrics and determinism digests are recorded side by
    side, making the "identical results, different wall-clock"
    contract checkable at a glance.  The real tier is never timed here
    (minutes per run); pass ``provider="real"`` to :func:`run_single`
    to measure it deliberately.  The compiled-build status of the hot
    modules is recorded so numbers from a ``.[fast]`` wheel are
    labelled as such.

    Args:
        simulated: an already-measured simulated-tier block (from
            :func:`hotpath_benchmark`); its digest is cross-checked
            against the freshly timed runs but its (earlier, possibly
            differently loaded) timings are not reused.
    """
    evaluation_trace(trace_name)  # warm the lru-cached trace
    tier_names = ("simulated", "accounting")
    walls: Dict[str, list] = {tier: [] for tier in tier_names}
    last_results: Dict[str, SimulationResults] = {}
    for _ in range(max(1, repeats)):
        for tier in tier_names:
            elapsed, results, _ = run_single(
                trace_name, family, seed, provider=tier
            )
            walls[tier].append(round(elapsed, 3))
            last_results[tier] = results
    tiers: Dict[str, Any] = {}
    for tier in tier_names:
        results = last_results[tier]
        tiers[tier] = {
            "wall_seconds_best": min(walls[tier]),
            "wall_seconds_all": walls[tier],
            "metrics": {
                "success_rate": round(results.success_rate, 6),
                "cost": round(results.cost, 6),
                "total_energy": round(results.total_energy, 6),
            },
            "results_digest": results_digest(results),
        }
    if simulated is not None and "results_digest" in simulated:
        tiers["simulated"]["matches_main_benchmark"] = (
            simulated["results_digest"]
            == tiers["simulated"]["results_digest"]
        )
    tiers["real"] = {
        "status": "skipped",
        "note": (
            "from-scratch RSA keygen/sign: minutes per run; "
            "run_single(provider='real') measures it on demand"
        ),
    }
    compiled = compiled_modules()
    tiers["compiled"] = {
        "status": (
            "compiled" if all(compiled.values()) else "pure-python"
        ),
        "modules": compiled,
        "note": (
            "build `pip install .[fast]` (REPRO_FAST=1) and re-run "
            "`repro perf` to record compiled numbers; results are "
            "bit-identical either way (CI's compiled-wheel job "
            "asserts it)"
        ),
    }
    tiers["identical_results"] = (
        tiers["simulated"]["results_digest"]
        == tiers["accounting"]["results_digest"]
    )
    return tiers


def _best_ns(func, number: int, repeat: int = 5) -> float:
    """Best per-call time of ``func`` in nanoseconds."""
    return min(timeit.repeat(func, number=number, repeat=repeat)) / number * 1e9


def microbench_encoding(number: int = 20_000) -> Dict[str, float]:
    """Cold vs cached ``ProofOfRelay.payload()`` (construction included)."""
    msg_hash = digest(b"bench-message")

    def cold():
        return ProofOfRelay(
            msg_hash=msg_hash, giver=7, taker=9, signed_at=1234.5
        ).payload()

    por = ProofOfRelay(msg_hash=msg_hash, giver=7, taker=9, signed_at=1234.5)
    por.payload()  # populate the memo
    return {
        "encode_cold_ns": round(_best_ns(cold, number), 1),
        "encode_cached_ns": round(_best_ns(por.payload, number), 1),
    }


def microbench_hmac(number: int = 20_000) -> Dict[str, float]:
    """One-shot HMAC (raw key) vs the prepared-key copy path."""
    key = digest(b"bench-key")
    payload = b"x" * 96
    prepared = prepare_hmac_key(key)
    return {
        "hmac_oneshot_ns": round(
            _best_ns(lambda: hmac_digest(key, payload), number), 1
        ),
        "hmac_prepared_ns": round(
            _best_ns(lambda: hmac_digest(prepared, payload), number), 1
        ),
    }


def microbench_buffer_scan(
    buffer_size: int = 64, number: int = 5_000
) -> Dict[str, float]:
    """Indexed ``relay_candidates`` vs the pre-overhaul full-buffer filter."""
    results = SimulationResults()
    node = NodeState(node_id=0)
    for i in range(buffer_size):
        message = Message(
            msg_id=i, source=0, destination=buffer_size + 1,
            created_at=0.0, ttl=3600.0,
        )
        node.store(StoredCopy(message=message, received_at=0.0), 0.0, results)
    exclude = set(range(0, buffer_size, 2))
    now = 10.0

    def naive():
        return [
            copy
            for copy in node.buffer.values()
            if not copy.body_dropped
            and copy.message.alive_at(now)
            and copy.message.msg_id not in exclude
        ]

    def indexed():
        return node.relay_candidates(now, exclude)

    assert [c.message.msg_id for c in naive()] == [
        c.message.msg_id for c in indexed()
    ]
    return {
        "buffer_size": buffer_size,
        "scan_naive_ns": round(_best_ns(naive, number), 1),
        "scan_indexed_ns": round(_best_ns(indexed, number), 1),
    }


def microbench_batch_verify(
    batch: int = 16, number: int = 2_000
) -> Dict[str, float]:
    """Batched signature verification vs a per-signature loop.

    Mirrors the ``_offer`` choke point: ``batch`` proofs signed by one
    key, all hitting the MAC memo — the difference is pure call and
    counter overhead, which is exactly what the collect-then-verify
    change removed from the handshake.
    """
    provider = SimulatedCryptoProvider(random.Random(1))
    private_key, public_key = provider.generate_keypair()
    items = []
    for i in range(batch):
        payload = b"bench-por|%d" % i
        items.append((public_key, payload, provider.sign(private_key, payload)))

    def loop():
        ok = True
        for key, payload, signature in items:
            ok = provider.verify(key, payload, signature) and ok
        return ok

    def batched():
        return provider.verify_batch(items)

    assert loop() and batched()
    return {
        "batch_size": batch,
        "verify_loop_ns": round(_best_ns(loop, number), 1),
        "verify_batched_ns": round(_best_ns(batched, number), 1),
    }


def microbench_expiry_index(
    size: int = 64, number: int = 50_000
) -> Dict[str, float]:
    """Array-backed TTL-expiry probe vs a dict-backed full scan.

    The steady-state case (nothing expired yet) that every
    ``relay_candidates`` call pays: the sorted ``array('d')`` sidecar
    answers it with one O(1) head probe, where the pre-overhaul
    per-object index had to scan every entry's deadline.
    """
    expiries = [1000.0 + float(i) for i in range(size)]
    times = array("d", expiries)
    by_id = {i: expiry for i, expiry in enumerate(expiries)}
    now = 500.0  # before every deadline: the common no-op sweep

    def dict_scan():
        return [mid for mid, expiry in by_id.items() if expiry <= now]

    def array_probe():
        if times and times[0] <= now:
            return bisect_right(times, now)
        return 0

    assert dict_scan() == [] and array_probe() == 0
    return {
        "index_size": size,
        "expiry_dict_scan_ns": round(_best_ns(dict_scan, number), 1),
        "expiry_array_probe_ns": round(_best_ns(array_probe, number), 1),
    }


def build_report(
    repeats: int = 5, profile: bool = True, provider: Optional[str] = None
) -> Dict[str, Any]:
    """Assemble the full ``BENCH_hotpath.json`` payload."""
    optimized = hotpath_benchmark(
        repeats=repeats, profile=profile, provider=provider
    )
    report: Dict[str, Any] = {
        "benchmark": "relay-loop hot path",
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "methodology": (
            "wall_seconds_best is the best of N back-to-back runs "
            "(container wall-clock is noisy; best-of-N is the stable "
            "statistic); profiled_seconds is one cProfile run, which "
            "inflates absolute time ~3-4x but ranks hotspots stably; "
            "counters are deterministic for the seed and comparable "
            "across machines; speedup_wall_same_machine divides the "
            "same-container re-measured pre-batching baseline by this "
            "report's best (cross-machine wall comparisons are "
            "meaningless — see same_machine_baseline)"
        ),
        "baseline": BASELINE,
        "same_machine_baseline": SAME_MACHINE_BASELINE,
        "optimized": optimized,
        "speedup_wall": round(
            BASELINE["wall_seconds_best"] / optimized["wall_seconds_best"], 2
        ),
        "speedup_wall_same_machine": round(
            SAME_MACHINE_BASELINE["wall_seconds_best"]
            / optimized["wall_seconds_best"],
            2,
        ),
    }
    if "profiled_seconds" in optimized:
        report["speedup_profiled"] = round(
            BASELINE["profiled_seconds"] / optimized["profiled_seconds"], 2
        )
    report["tiers"] = tiers_benchmark(
        repeats=max(2, repeats - 2), simulated=optimized
    )
    report["microbenchmarks"] = {
        "encoding": microbench_encoding(),
        "hmac": microbench_hmac(),
        "buffer_scan": microbench_buffer_scan(),
        "batch_verify": microbench_batch_verify(),
        "expiry_index": microbench_expiry_index(),
    }
    return report


def write_report(
    path: str,
    repeats: int = 5,
    profile: bool = True,
    provider: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the benchmark and write the JSON report to ``path``."""
    report = build_report(repeats=repeats, profile=profile, provider=provider)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report
