"""Hot-path benchmark: the measurements behind ``BENCH_hotpath.json``.

The headline benchmark is one full simulation run — cambridge06 /
G2G Epidemic Forwarding / seed 1 — timed best-of-N, with the
deterministic op-counter reading for the run alongside.  Wall-clock on
a shared container is noisy (identical code varies by 2x between
quiet and busy moments), so the report records three complementary
views:

* best-of-N wall seconds (the least-noise wall statistic),
* one cProfile-instrumented run (stable ranking of where time goes;
  profiling inflates absolute time roughly 3-4x, which is the
  methodology behind the pre-overhaul "~11 s" figure), and
* the op counters, which are bit-exact for a fixed seed and therefore
  comparable across machines.

The pre-overhaul reference numbers are frozen in :data:`BASELINE`
(they were measured at the commit recorded there; the optimized tree
cannot re-measure them).  Microbenchmarks isolate the three layers the
overhaul touched: wire encodings, HMAC signing, and the relay-candidate
buffer scan.

This module pulls in the whole experiment stack — import it lazily
(the CLI and the perf tests do), never from ``repro.perf.__init__``.
"""

from __future__ import annotations

import cProfile
import json
import platform
import sys
import time
import timeit
from typing import Any, Dict, Optional

from ..core.g2g_epidemic import G2GEpidemicForwarding
from ..core.wire import ProofOfRelay
from ..crypto.hashing import digest, hmac_digest, prepare_hmac_key
from ..experiments.setting import evaluation_trace, standard_config
from ..sim.engine import run_simulation
from ..sim.messages import Message, StoredCopy
from ..sim.node import NodeState
from ..sim.results import SimulationResults
from .counters import COUNTERS

#: The single-run benchmark spec.
BENCH_TRACE = "cambridge06"
BENCH_FAMILY = "epidemic"
BENCH_SEED = 1

#: Pre-overhaul reference, measured at the recorded commit on the same
#: container as the optimized numbers (best of 7 back-to-back runs;
#: the profiled figure is one cProfile run of the same spec).  The
#: run's metrics are part of the reference: the overhaul is only valid
#: while the optimized run reproduces them bit-for-bit.
BASELINE: Dict[str, Any] = {
    "commit": "d369a0f",
    "wall_seconds_best": 2.788,
    "wall_seconds_all": [3.262, 3.103, 3.369, 3.779, 2.899, 2.788, 2.846],
    "profiled_seconds": 10.6,
    "metrics": {
        "success_rate": 0.702733,
        "cost": 23.604214,
        "total_energy": 2550.404531,
    },
}


def run_single(
    trace_name: str = BENCH_TRACE,
    family: str = BENCH_FAMILY,
    seed: int = BENCH_SEED,
):
    """One timed benchmark run.

    Returns:
        ``(elapsed_seconds, results, counter_diff)``.
    """
    trace = evaluation_trace(trace_name)
    config = standard_config(trace_name, family, seed)
    before = COUNTERS.snapshot()
    start = time.perf_counter()
    results = run_simulation(trace, G2GEpidemicForwarding(), config)
    elapsed = time.perf_counter() - start
    return elapsed, results, COUNTERS.diff(before)


def hotpath_benchmark(
    repeats: int = 5,
    trace_name: str = BENCH_TRACE,
    family: str = BENCH_FAMILY,
    seed: int = BENCH_SEED,
    profile: bool = True,
) -> Dict[str, Any]:
    """Time the single-run benchmark best-of-``repeats``.

    Also runs one cProfile-instrumented repetition (unless ``profile``
    is False) so the report carries the same methodology as the
    recorded baseline's profiled figure.
    """
    evaluation_trace(trace_name)  # warm the lru-cached trace
    times = []
    results: Optional[SimulationResults] = None
    counters: Dict[str, int] = {}
    for _ in range(max(1, repeats)):
        elapsed, results, counters = run_single(trace_name, family, seed)
        times.append(elapsed)
    report: Dict[str, Any] = {
        "spec": {"trace": trace_name, "family": family, "seed": seed},
        "wall_seconds_best": round(min(times), 3),
        "wall_seconds_all": [round(t, 3) for t in times],
        "metrics": {
            "success_rate": round(results.success_rate, 6),
            "cost": round(results.cost, 6),
            "total_energy": round(results.total_energy, 6),
        },
        "counters": counters,
    }
    if profile:
        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.runcall(run_single, trace_name, family, seed)
        report["profiled_seconds"] = round(time.perf_counter() - start, 3)
    return report


def _best_ns(func, number: int, repeat: int = 5) -> float:
    """Best per-call time of ``func`` in nanoseconds."""
    return min(timeit.repeat(func, number=number, repeat=repeat)) / number * 1e9


def microbench_encoding(number: int = 20_000) -> Dict[str, float]:
    """Cold vs cached ``ProofOfRelay.payload()`` (construction included)."""
    msg_hash = digest(b"bench-message")

    def cold():
        return ProofOfRelay(
            msg_hash=msg_hash, giver=7, taker=9, signed_at=1234.5
        ).payload()

    por = ProofOfRelay(msg_hash=msg_hash, giver=7, taker=9, signed_at=1234.5)
    por.payload()  # populate the memo
    return {
        "encode_cold_ns": round(_best_ns(cold, number), 1),
        "encode_cached_ns": round(_best_ns(por.payload, number), 1),
    }


def microbench_hmac(number: int = 20_000) -> Dict[str, float]:
    """One-shot HMAC (raw key) vs the prepared-key copy path."""
    key = digest(b"bench-key")
    payload = b"x" * 96
    prepared = prepare_hmac_key(key)
    return {
        "hmac_oneshot_ns": round(
            _best_ns(lambda: hmac_digest(key, payload), number), 1
        ),
        "hmac_prepared_ns": round(
            _best_ns(lambda: hmac_digest(prepared, payload), number), 1
        ),
    }


def microbench_buffer_scan(
    buffer_size: int = 64, number: int = 5_000
) -> Dict[str, float]:
    """Indexed ``relay_candidates`` vs the pre-overhaul full-buffer filter."""
    results = SimulationResults()
    node = NodeState(node_id=0)
    for i in range(buffer_size):
        message = Message(
            msg_id=i, source=0, destination=buffer_size + 1,
            created_at=0.0, ttl=3600.0,
        )
        node.store(StoredCopy(message=message, received_at=0.0), 0.0, results)
    exclude = set(range(0, buffer_size, 2))
    now = 10.0

    def naive():
        return [
            copy
            for copy in node.buffer.values()
            if not copy.body_dropped
            and copy.message.alive_at(now)
            and copy.message.msg_id not in exclude
        ]

    def indexed():
        return node.relay_candidates(now, exclude)

    assert [c.message.msg_id for c in naive()] == [
        c.message.msg_id for c in indexed()
    ]
    return {
        "buffer_size": buffer_size,
        "scan_naive_ns": round(_best_ns(naive, number), 1),
        "scan_indexed_ns": round(_best_ns(indexed, number), 1),
    }


def build_report(repeats: int = 5, profile: bool = True) -> Dict[str, Any]:
    """Assemble the full ``BENCH_hotpath.json`` payload."""
    optimized = hotpath_benchmark(repeats=repeats, profile=profile)
    report: Dict[str, Any] = {
        "benchmark": "relay-loop hot path",
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "methodology": (
            "wall_seconds_best is the best of N back-to-back runs "
            "(container wall-clock is noisy; best-of-N is the stable "
            "statistic); profiled_seconds is one cProfile run, which "
            "inflates absolute time ~3-4x but ranks hotspots stably; "
            "counters are deterministic for the seed and comparable "
            "across machines"
        ),
        "baseline": BASELINE,
        "optimized": optimized,
        "speedup_wall": round(
            BASELINE["wall_seconds_best"] / optimized["wall_seconds_best"], 2
        ),
    }
    if "profiled_seconds" in optimized:
        report["speedup_profiled"] = round(
            BASELINE["profiled_seconds"] / optimized["profiled_seconds"], 2
        )
    report["microbenchmarks"] = {
        "encoding": microbench_encoding(),
        "hmac": microbench_hmac(),
        "buffer_scan": microbench_buffer_scan(),
    }
    return report


def write_report(
    path: str, repeats: int = 5, profile: bool = True
) -> Dict[str, Any]:
    """Run the benchmark and write the JSON report to ``path``."""
    report = build_report(repeats=repeats, profile=profile)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report
