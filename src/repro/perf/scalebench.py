"""The ``repro scale-bench`` harness: nodes-vs-wall and nodes-vs-RSS.

Each scale point runs in a **fresh interpreter**: peak RSS
(``ru_maxrss``) is monotone for the life of a process, so measuring
1k → 1M in one process would report every point at the 1M high-water
mark.  The child (``python -m repro.perf.scalebench``) builds a
:class:`~repro.traces.SyntheticStreamSource`, drives the epidemic
engine over it, and prints one JSON record; the parent collects the
points into ``BENCH_scale.json``.

Two curve families make the bounded-memory claim checkable:

* ``nodes_vs`` — node scales at a fixed stream duration: wall time
  grows with contact volume, RSS with the *touched* node set.
* ``contacts_vs`` — a fixed 10k-node universe at growing durations:
  total contacts grow linearly while RSS stays flat, which is the
  "RSS sublinear in total contacts" acceptance check (the stream is
  never materialized; the heap holds only the in-flight frontier).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

SCHEMA = "g2g-scale-bench/1"

#: Node scales of the default ``nodes_vs`` sweep.
DEFAULT_SCALES = (1_000, 10_000, 100_000, 1_000_000)

#: Stream durations (seconds) of the fixed-node ``contacts_vs`` sweep.
DEFAULT_DURATIONS = (3_600.0, 14_400.0, 43_200.0, 86_400.0)


def run_scale_point(
    nodes: int,
    duration: float = 3_600.0,
    seed: int = 0,
    contacts_per_node: float = 2.0,
    messages: int = 200,
    spill_keep: int = 64,
) -> Dict[str, Any]:
    """One scale point, measured **in this process** (child entry).

    The run is an honest epidemic workload: a fixed message budget
    (``messages`` total, independent of scale, so traffic cost stays
    a constant term) over a power-law community stream.  The relay
    spill bounds resident copies per node at ``spill_keep``.
    """
    from ..experiments.catalog import protocol
    from ..perf.counters import COUNTERS
    from ..perf.memory import peak_rss_bytes
    from ..sim.config import SimulationConfig
    from ..sim.engine import Simulation
    from ..sim.node import SpillPolicy
    from ..traces.stream import StreamModelConfig, SyntheticStreamSource

    source = SyntheticStreamSource(
        StreamModelConfig(
            nodes=nodes,
            duration=duration,
            seed=seed,
            contacts_per_node=contacts_per_node,
        )
    )
    silent_tail = duration / 4.0
    config = SimulationConfig(
        run_length=duration,
        silent_tail=silent_tail,
        mean_interarrival=(duration - silent_tail) / max(1, messages),
        ttl=duration / 2.0,
        seed=seed,
        track_memory=False,
    )
    _, factory = protocol("epidemic")
    ops_before = COUNTERS.snapshot()
    started = time.perf_counter()
    results = Simulation(
        source,
        factory(),
        config,
        spill=SpillPolicy(keep=spill_keep),
    ).run()
    wall = time.perf_counter() - started
    ops = COUNTERS.diff(ops_before)
    return {
        "nodes": nodes,
        "duration_s": duration,
        "seed": seed,
        "contacts": ops["stream_contacts"],
        "chunks": ops["stream_chunks"],
        "spill_writes": ops["relay_spill_writes"],
        "spill_reads": ops["relay_spill_reads"],
        "generated": results.generated,
        "delivered": results.delivered,
        "wall_s": round(wall, 3),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def _spawn_point(args: Sequence[str], timeout: float) -> Dict[str, Any]:
    """Run one scale point in a fresh interpreter; parse its JSON."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.perf.scalebench", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale point {' '.join(args)} failed:\n{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def scale_bench(
    scales: Sequence[int] = DEFAULT_SCALES,
    durations: Sequence[float] = DEFAULT_DURATIONS,
    contacts_nodes: int = 10_000,
    seed: int = 0,
    point_timeout: float = 1_800.0,
    progress: bool = False,
) -> Dict[str, Any]:
    """Run the full sweep (one subprocess per point); return the report."""
    nodes_vs: List[Dict[str, Any]] = []
    for nodes in scales:
        if progress:
            print(f"scale-bench: nodes={nodes} ...", file=sys.stderr)
        nodes_vs.append(
            _spawn_point(
                ["--nodes", str(nodes), "--seed", str(seed)], point_timeout
            )
        )
    contacts_vs: List[Dict[str, Any]] = []
    for duration in durations:
        if progress:
            print(
                f"scale-bench: duration={duration} @ {contacts_nodes} nodes ...",
                file=sys.stderr,
            )
        # contacts_per_node is a *total* over the stream, so scale it
        # with the duration — the point of this sweep is to grow the
        # contact volume while the universe stays fixed.
        per_node = 2.0 * duration / 3_600.0
        contacts_vs.append(
            _spawn_point(
                [
                    "--nodes", str(contacts_nodes),
                    "--duration", str(duration),
                    "--contacts-per-node", str(per_node),
                    "--seed", str(seed),
                ],
                point_timeout,
            )
        )
    return {
        "schema": SCHEMA,
        "seed": seed,
        "nodes_vs": nodes_vs,
        "contacts_vs": contacts_vs,
        "notes": (
            "Each point is a fresh interpreter (peak RSS is monotone "
            "per process). nodes_vs sweeps the universe at a fixed "
            "1h stream; contacts_vs grows the stream at a fixed "
            f"{contacts_nodes}-node universe — flat RSS there is the "
            "bounded-memory (sublinear-in-contacts) check."
        ),
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Child entry point: run one point, print its JSON record."""
    parser = argparse.ArgumentParser(
        description="one scale-bench point (internal child process)"
    )
    parser.add_argument("--nodes", type=int, required=True)
    parser.add_argument("--duration", type=float, default=3_600.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--contacts-per-node", type=float, default=2.0)
    parser.add_argument("--messages", type=int, default=200)
    parser.add_argument("--spill-keep", type=int, default=64)
    args = parser.parse_args(argv)
    record = run_scale_point(
        nodes=args.nodes,
        duration=args.duration,
        seed=args.seed,
        contacts_per_node=args.contacts_per_node,
        messages=args.messages,
        spill_keep=args.spill_keep,
    )
    print(json.dumps(record, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
