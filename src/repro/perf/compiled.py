"""Detect whether the optional mypyc-compiled hot modules are active.

``pip install .[fast]`` (with ``REPRO_FAST=1`` at build time) compiles
the strict-typed hot modules to C extensions; without it the exact
same source runs pure-Python.  Results are bit-identical either way —
the compiled build only changes wall-clock — so the only runtime
question is *which* build is in front of us.  This helper answers it
by inspecting ``__file__``: a compiled module loads from a ``.so`` /
``.pyd``, an interpreted one from ``.py``.

Import-light on purpose: the benchmark report and the CI
compiled-wheel job both call :func:`compiled_modules` to label their
numbers, and the conformance tests use it to assert which build they
exercised.
"""

from __future__ import annotations

import importlib
from typing import Dict, Tuple

#: The modules the ``[fast]`` build compiles (see ``setup.py``).
HOT_COMPILED_MODULES: Tuple[str, ...] = (
    "repro.core.wire",
    "repro.crypto.hashing",
    "repro.sim.events",
    "repro.sim.node",
)

#: Extension suffixes a compiled module loads from.
_COMPILED_SUFFIXES = (".so", ".pyd")


def compiled_modules() -> Dict[str, bool]:
    """Map each hot module name to True iff its compiled form loaded."""
    status: Dict[str, bool] = {}
    for name in HOT_COMPILED_MODULES:
        module = importlib.import_module(name)
        origin = getattr(module, "__file__", "") or ""
        status[name] = origin.endswith(_COMPILED_SUFFIXES)
    return status


def is_compiled_build() -> bool:
    """True iff every hot module runs from its compiled form."""
    return all(compiled_modules().values())
