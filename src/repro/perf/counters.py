"""Operation counters for the relay-loop hot path.

Wall-clock perf tests are flaky across machines; *operation counts*
are deterministic for a fixed seed.  The hot modules increment a
global :data:`COUNTERS` instance at the operations the hot-path
overhaul targets (signature HMACs, wire encodings, buffer scans,
relay-phase entries), so perf tests can assert "this run performed at
most N signatures" instead of "this run took at most N seconds".

The counters are always on: a slot attribute increment costs a few
nanoseconds per op, which is noise next to the HMAC or encoding it
counts.  Callers that want a per-run reading should ``reset()`` first
or diff two ``snapshot()`` dicts — the simulator never resets them on
its own (parallel experiment workers each run in their own process,
so per-process totals stay meaningful).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Names of every tracked operation, in report order.
FIELDS = (
    "signatures",            # provider.sign calls (one HMAC each)
    "verifications",         # provider.verify calls
    "mac_cache_hits",        # verifications answered from the MAC memo
    "hmac_prepares",         # HMAC objects built from a raw key
    "hmac_copies",           # HMACs derived from a prepared key (fast path)
    "encodings",             # wire._enc invocations (cache misses)
    "encoding_cache_hits",   # payload()/wire_bytes() served from cache
    "cert_checks",           # certificate-chain validations performed
    "cert_cache_hits",       # chain validations skipped via the cert cache
    "relay_entries",         # _relay_one invocations (post seen-filter)
    "relay_handoffs",        # relays that completed with a hand-off
    "buffer_scans",          # relay-candidate scans over a node buffer
    "buffer_scanned",        # copies inspected across all buffer scans
    "housekeeping_scans",    # ripe Δ2 purge batches actually applied
    "pending_scans",         # _pending_givers evaluations actually run
    "timers_scheduled",      # scheduler timers registered on the queue
    "timer_dispatches",      # timers fired through the event loop
    "timers_cancelled",      # timers cancelled before firing
    "spans_recorded",        # telemetry protocol-phase spans closed
    "stream_chunks",         # contact-source chunks pulled into the engine
    "stream_contacts",       # contacts streamed across all chunks
    "relay_spill_writes",    # stored copies demoted to the on-disk index
    "relay_spill_reads",     # spilled copies promoted back into memory
)


#: Which hot module owns which counters, keyed by path relative to the
#: ``repro`` package.  This is the contract the op-budget perf tests
#: rest on: a module listed here must actually increment every listed
#: field, or its budget assertions silently measure nothing.  The
#: ``G2G005`` lint rule (:mod:`repro.analysis.rules`) enforces the
#: mapping statically — update both sides together when moving an
#: instrumentation site.
HOT_MODULE_COUNTERS: Dict[str, Tuple[str, ...]] = {
    "core/g2g_base.py": (
        "relay_entries", "relay_handoffs",
        "housekeeping_scans", "pending_scans",
    ),
    "core/proofs.py": ("encodings",),
    "core/wire.py": ("encodings", "encoding_cache_hits"),
    "crypto/accounting.py": (
        "signatures", "verifications", "mac_cache_hits",
    ),
    "crypto/hashing.py": ("hmac_prepares", "hmac_copies"),
    "crypto/keys.py": ("cert_checks", "cert_cache_hits"),
    "crypto/provider.py": (
        "signatures", "verifications", "mac_cache_hits", "hmac_copies",
    ),
    "sim/events.py": (
        "timers_scheduled", "timer_dispatches", "timers_cancelled",
    ),
    "sim/node.py": (
        "buffer_scans", "buffer_scanned",
        "relay_spill_writes", "relay_spill_reads",
    ),
    "telemetry/spans.py": ("spans_recorded",),
    "traces/stream.py": ("stream_chunks", "stream_contacts"),
}


class OpCounters:
    """A bundle of monotonically increasing operation counters."""

    __slots__ = FIELDS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        for name in FIELDS:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Current values as a plain dict (safe to mutate)."""
        return {name: getattr(self, name) for name in FIELDS}

    def diff(self, before: Dict[str, int]) -> Dict[str, int]:
        """Per-counter increase since a previous :meth:`snapshot`."""
        return {
            name: getattr(self, name) - before.get(name, 0)
            for name in FIELDS
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{n}={getattr(self, n)}" for n in FIELDS)
        return f"OpCounters({inner})"


#: The process-global counter instance the hot modules increment.
COUNTERS = OpCounters()
