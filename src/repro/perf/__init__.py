"""Performance harness: op counters and hot-path microbenchmarks.

``repro.perf.counters`` is imported by the hot modules themselves and
must stay dependency-free; ``repro.perf.bench`` pulls in the whole
experiment stack and is therefore imported lazily (by the CLI and the
perf tests), never from this package root.
"""

from .counters import COUNTERS, OpCounters
from .memory import current_rss_bytes, measure_peak_alloc, peak_rss_bytes

__all__ = [
    "COUNTERS",
    "OpCounters",
    "current_rss_bytes",
    "measure_peak_alloc",
    "peak_rss_bytes",
]
