"""Process-memory measurement for the scale benchmarks.

The container has no ``psutil``; everything here is stdlib:

* :func:`peak_rss_bytes` — the kernel's high-water resident set via
  ``getrusage`` (the number ``repro scale-bench`` curves plot).  Peak
  RSS is monotone for the life of a process, which is why the bench
  harness spawns a fresh interpreter per scale point.
* :func:`current_rss_bytes` — instantaneous RSS from
  ``/proc/self/statm`` (Linux; ``None`` elsewhere).
* :func:`measure_peak_alloc` — ``tracemalloc``-scoped peak *Python*
  allocation of one callable; unlike RSS it is exact, deterministic,
  and immune to allocator slack, which makes it the unit-testable
  face of this module.
"""

from __future__ import annotations

import os
import resource
import sys
import tracemalloc
from typing import Any, Callable, Optional, Tuple


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalize
    to bytes so callers never see the platform split.
    """
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux container
        return int(usage)
    return int(usage) * 1024


def current_rss_bytes() -> Optional[int]:
    """Instantaneous resident set size, or ``None`` off-Linux.

    Reads ``/proc/self/statm`` (field 2 is resident pages); unlike the
    peak it can go *down*, so it is the right probe for "how much is
    resident right now" checks between pipeline stages.
    """
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):  # pragma: no cover
        return None


def measure_peak_alloc(fn: Callable[[], Any]) -> Tuple[Any, int]:
    """Run ``fn`` and return ``(result, peak_python_bytes)``.

    The peak is ``tracemalloc``'s traced high-water mark over the
    call, relative to the allocation level at entry — a deterministic,
    allocator-independent measure of how much memory the callable
    itself needed at its worst moment.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, max(0, peak - baseline)
