"""Forwarding-quality trackers for Delegation Forwarding.

Two flavors, matching the paper (Sec. VI):

* **Destination Frequency** — "the number of encounters with the
  destination";
* **Destination Last Contact** — "the time of the last encounter with
  the destination".

Both are *symmetric pair metrics*: the quality of B towards D is a
function of the B–D encounter history, which both B and D observe
identically.  G2G Delegation exploits that symmetry for the test by
the destination: D can recompute what B should have declared.

For G2G, declared values are not the live quality but "the quality
computed in the last completed timeframe"; every node keeps "the
current and the two forwarding qualities computed in the previous two
completed timeframes" (Sec. VI-A).  :class:`TimeframedQuality`
implements exactly that versioning with lazy frame rollover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Optional, Tuple

from ..traces.trace import NodeId

if TYPE_CHECKING:  # circular at runtime: base imports sim, sim uses us
    from .base import SimulationContext

#: How many completed frame snapshots each record retains.
SNAPSHOT_DEPTH = 2

#: Scheduler tag of the timeframe-rollover timer chain.
FRAME_TIMER_TAG = "quality.frame"


@dataclass
class _PairRecord:
    """Quality state of one unordered node pair.

    ``snapshots`` maps a completed frame index to the quality value as
    of that frame's end; only the most recent :data:`SNAPSHOT_DEPTH`
    completed frames are retained, mirroring the paper's "three
    versions" rule (current + two).
    """

    current: float = 0.0
    last_frame: int = 0
    snapshots: Dict[int, float] = field(default_factory=dict)

    def roll(self, frame: int) -> None:
        """Advance to ``frame``, snapshotting the frames completed since.

        No encounters happened between updates, so every intermediate
        completed frame ends with the same ``current`` value.
        """
        if frame <= self.last_frame:
            return
        for completed in range(self.last_frame, frame):
            self.snapshots[completed] = self.current
        # Trim to the retention window.
        for old in [f for f in self.snapshots if f < frame - SNAPSHOT_DEPTH]:
            del self.snapshots[old]
        self.last_frame = frame


class QualityTracker:
    """Encounter-driven quality bookkeeping for one simulation run.

    Args:
        variant: "frequency" or "last_contact".
        timeframe: frame length in seconds (the paper uses 34 min).
    """

    VARIANTS = ("frequency", "last_contact")

    def __init__(self, variant: str, timeframe: float) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of {self.VARIANTS}"
            )
        if timeframe <= 0:
            raise ValueError("timeframe must be positive")
        self.variant = variant
        self.timeframe = timeframe
        self._records: Dict[FrozenSet[NodeId], _PairRecord] = {}

    def _record(self, a: NodeId, b: NodeId) -> _PairRecord:
        return self._records.setdefault(frozenset((a, b)), _PairRecord())

    def frame_of(self, now: float) -> int:
        """Index of the frame containing ``now``."""
        return int(now // self.timeframe)

    # -- frame-boundary timers -----------------------------------------

    def schedule_rollover(self, ctx: "SimulationContext") -> None:
        """Register the first frame-boundary timer with the run scheduler.

        Timeframe completions then fire as events instead of being
        recomputed per query.  The per-query ``roll`` calls stay as
        idempotent guards: events *at* a boundary instant sort before
        the boundary's ``TIMER`` (contacts and generations have lower
        priority), so a same-instant query must still advance its own
        record first.  ``roll_all`` is therefore a no-op for every
        record already touched in the frame — results are identical
        with or without the timer chain, by construction.
        """
        ctx.schedule(self.timeframe, FRAME_TIMER_TAG, 1)

    def handle_frame_timer(
        self, ctx: "SimulationContext", payload: Any, now: float
    ) -> None:
        """Frame ``payload`` completed: roll every record, chain onward.

        The next boundary is computed as ``(frame + 1) * timeframe``
        (multiplication, not accumulation) so the chain never drifts
        off the exact boundaries ``frame_of`` quantizes to.  The chain
        ends by itself at the horizon — the scheduler refuses timers
        past run end.
        """
        frame = int(payload)
        self.roll_all(frame)
        ctx.schedule((frame + 1) * self.timeframe, FRAME_TIMER_TAG, frame + 1)

    def roll_all(self, frame: int) -> None:
        """Advance every pair record to ``frame`` (boundary dispatch)."""
        for record in self._records.values():
            record.roll(frame)

    def encounter(self, a: NodeId, b: NodeId, now: float) -> None:
        """Record one contact between ``a`` and ``b``."""
        record = self._record(a, b)
        record.roll(self.frame_of(now))
        if self.variant == "frequency":
            record.current += 1.0
        else:
            record.current = now

    def current(self, node: NodeId, destination: NodeId, now: float) -> float:
        """Live quality of ``node`` towards ``destination``.

        This is what vanilla Delegation Forwarding uses.
        """
        record = self._record(node, destination)
        record.roll(self.frame_of(now))
        return record.current

    def completed(
        self, node: NodeId, destination: NodeId, now: float
    ) -> Tuple[float, int]:
        """Quality from the last completed timeframe, with its index.

        This is what G2G Delegation declares in FQ_RESP messages.
        Returns ``(value, frame_index)``; the value is 0.0 when no
        frame has completed yet.
        """
        frame = self.frame_of(now)
        record = self._record(node, destination)
        record.roll(frame)
        if frame == 0:
            return 0.0, -1
        return record.snapshots.get(frame - 1, record.current), frame - 1

    def value_at_frame(
        self, node: NodeId, destination: NodeId, frame: int, now: float
    ) -> Optional[float]:
        """Quality as of the end of completed frame ``frame``.

        Returns None when the frame is outside the retention window —
        the verifier then cannot check the declaration (the paper's
        timeframe is chosen so delays fall within the window with high
        probability).
        """
        record = self._record(node, destination)
        record.roll(self.frame_of(now))
        return record.snapshots.get(frame)

    def better(self, candidate: float, incumbent: float) -> bool:
        """Is ``candidate`` strictly better than ``incumbent``?

        Both variants use numeric greater-than: more encounters, or a
        more recent last-contact time.
        """
        return candidate > incumbent
