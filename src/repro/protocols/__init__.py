"""Baseline forwarding protocols and the protocol interface."""

from .base import (
    ForwardingProtocol,
    SimulationContext,
    exchange_pairs,
    make_room,
)
from .bubble import BubbleRapForwarding
from .delegation import DelegationForwarding
from .epidemic import EpidemicForwarding
from .prophet import ProphetForwarding
from .quality import QualityTracker
from .spray_wait import SprayAndWaitForwarding

__all__ = [
    "BubbleRapForwarding",
    "DelegationForwarding",
    "EpidemicForwarding",
    "ForwardingProtocol",
    "ProphetForwarding",
    "QualityTracker",
    "SimulationContext",
    "SprayAndWaitForwarding",
    "exchange_pairs",
    "make_room",
]
