"""Binary Spray and Wait (Spyropoulos, Psounis, Raghavendra, 2005).

Not part of the Give2Get paper's evaluation, but the canonical
bounded-copies DTN baseline and a useful reference point next to the
give-2 rule: Spray and Wait bounds copies *globally* (L tokens minted
at the source, halved at each hand-off), while G2G bounds the
*per-relay fan-out* (2 onward hand-offs each, unbounded depth).

Protocol: a message starts with ``initial_copies`` logical tokens at
the source.  A node holding ``n > 1`` tokens that meets a node without
the message hands over ``floor(n / 2)`` tokens along with a replica
(the *spray* phase).  A node holding a single token only delivers
directly to the destination (the *wait* phase).
"""

from __future__ import annotations

from ..sim.messages import Message, StoredCopy
from ..sim.node import NodeState
from ..traces.trace import NodeId
from .base import ForwardingProtocol, make_room

#: Key under which the token count is stored on a copy's attachments
#: slot (kept out of StoredCopy's typed fields: tokens are specific to
#: this protocol).
_TOKENS = "spray_tokens"


class SprayAndWaitForwarding(ForwardingProtocol):
    """Binary Spray and Wait with configurable initial copy budget."""

    family = "epidemic"

    def __init__(self, initial_copies: int = 8) -> None:
        super().__init__()
        if initial_copies < 1:
            raise ValueError(
                f"initial_copies must be >= 1, got {initial_copies}"
            )
        self.initial_copies = initial_copies
        self.name = f"spray_and_wait_{initial_copies}"
        self._tokens: dict = {}

    def bind(self, ctx) -> None:
        super().bind(ctx)
        self._tokens = {}

    def _token_key(self, node: NodeId, msg_id: int):
        return (node, msg_id)

    def tokens_of(self, node: NodeId, msg_id: int) -> int:
        """Current token count of a node's copy (0 if absent)."""
        return self._tokens.get(self._token_key(node, msg_id), 0)

    def on_message_generated(self, message: Message, now: float) -> None:
        source = self.ctx.node(message.source)
        source.store(
            StoredCopy(message=message, received_at=now), now,
            self.ctx.results,
        )
        self._tokens[self._token_key(message.source, message.msg_id)] = (
            self.initial_copies
        )
        for peer in list(self.ctx.active_neighbors(message.source)):
            if self.ctx.usable_pair(message.source, peer):
                self._offer(source, self.ctx.node(peer), now)

    def on_contact_start(self, a: NodeId, b: NodeId, now: float) -> None:
        node_a, node_b = self.ctx.node(a), self.ctx.node(b)
        self._purge_expired(node_a, now)
        self._purge_expired(node_b, now)
        for giver, taker in ((node_a, node_b), (node_b, node_a)):
            self._offer(giver, taker, now)

    # -- internals ------------------------------------------------------

    def _purge_expired(self, node: NodeState, now: float) -> None:
        expired = [
            msg_id
            for msg_id, copy in node.buffer.items()
            if not copy.message.alive_at(now)
        ]
        for msg_id in expired:
            node.drop(msg_id, now, self.ctx.results)
            self._tokens.pop(self._token_key(node.node_id, msg_id), None)

    def _offer(self, giver: NodeState, taker: NodeState, now: float) -> None:
        results = self.ctx.results
        energy = self.ctx.config.energy
        for copy in giver.live_copies(now):
            message = copy.message
            tokens = self.tokens_of(giver.node_id, message.msg_id)
            is_destination = taker.node_id == message.destination
            if taker.has_seen(message.msg_id):
                continue
            if not is_destination and tokens <= 1:
                continue  # wait phase: direct delivery only
            results.relay_attempts += 1
            results.record_replica(message)
            results.add_energy(
                giver.node_id, energy.transfer_cost(message.size_bytes)
            )
            results.add_energy(
                taker.node_id, energy.receive_cost(message.size_bytes)
            )
            copy.relays.append(taker.node_id)
            if is_destination:
                taker.seen.add(message.msg_id)
                results.record_delivery(message, now)
                continue
            handed = tokens // 2
            self._tokens[self._token_key(giver.node_id, message.msg_id)] = (
                tokens - handed
            )
            self._tokens[self._token_key(taker.node_id, message.msg_id)] = (
                handed
            )
            make_room(self.ctx, taker, now)
            taker.store(
                StoredCopy(
                    message=message, received_at=now,
                    received_from=giver.node_id,
                ),
                now,
                results,
            )
            keep = taker.strategy.keep_relayed_copy(
                taker.node_id, message, giver.node_id, now
            )
            if not keep:
                taker.drop(message.msg_id, now, results)
                results.record_deviation(taker.node_id, message)
