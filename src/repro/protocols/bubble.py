"""BubbleRap: social-based forwarding (Hui, Crowcroft, Yoneki, 2008).

The paper's reference [5] and the source of its community-detection
methodology.  Not part of the Give2Get evaluation, but the natural
social-aware baseline to place beside Delegation Forwarding:

* each node has a **global centrality** and, within its community, a
  **local centrality** (estimated online as the number of distinct
  nodes / community members encountered);
* a message *bubbles up* the global ranking until it reaches a member
  of the destination's community, then bubbles up the local ranking
  inside the community until delivery.

The community structure is taken from the simulation context's
community oracle (a :class:`repro.social.CommunityMap` or the
generator's ground truth).
"""

from __future__ import annotations

from typing import Dict, Set

from ..sim.messages import Message, StoredCopy
from ..sim.node import NodeState
from ..traces.trace import NodeId
from .base import ForwardingProtocol, make_room


class BubbleRapForwarding(ForwardingProtocol):
    """BubbleRap with online degree-centrality estimation."""

    name = "bubble_rap"
    family = "delegation"

    def __init__(self) -> None:
        super().__init__()
        self._met: Dict[NodeId, Set[NodeId]] = {}

    def bind(self, ctx) -> None:
        super().bind(ctx)
        if ctx.community is None:
            raise ValueError(
                "BubbleRap needs a community oracle in the simulation "
                "context (pass community=... to Simulation)"
            )
        self._met = {node: set() for node in ctx.nodes}

    # -- social metrics ---------------------------------------------------

    def global_centrality(self, node: NodeId) -> int:
        """Distinct nodes ever encountered (online degree)."""
        return len(self._met[node])

    def local_centrality(self, node: NodeId) -> int:
        """Distinct same-community nodes encountered."""
        return sum(
            1
            for peer in self._met[node]
            if self.ctx.community.same_community(node, peer)
        )

    def _in_destination_community(self, node: NodeId, dst: NodeId) -> bool:
        return self.ctx.community.same_community(node, dst)

    def on_message_generated(self, message: Message, now: float) -> None:
        source = self.ctx.node(message.source)
        source.store(
            StoredCopy(message=message, received_at=now), now,
            self.ctx.results,
        )
        for peer in list(self.ctx.active_neighbors(message.source)):
            if self.ctx.usable_pair(message.source, peer):
                self._offer(source, self.ctx.node(peer), now)

    def on_contact_start(self, a: NodeId, b: NodeId, now: float) -> None:
        self._met[a].add(b)
        self._met[b].add(a)
        node_a, node_b = self.ctx.node(a), self.ctx.node(b)
        self._purge_expired(node_a, now)
        self._purge_expired(node_b, now)
        for giver, taker in ((node_a, node_b), (node_b, node_a)):
            self._offer(giver, taker, now)

    # -- internals ----------------------------------------------------------

    def _purge_expired(self, node: NodeState, now: float) -> None:
        expired = [
            msg_id
            for msg_id, copy in node.buffer.items()
            if not copy.message.alive_at(now)
        ]
        for msg_id in expired:
            node.drop(msg_id, now, self.ctx.results)

    def _should_forward(
        self, giver: NodeId, taker: NodeId, destination: NodeId
    ) -> bool:
        """The bubble rule."""
        taker_in = self._in_destination_community(taker, destination)
        giver_in = self._in_destination_community(giver, destination)
        if taker_in and not giver_in:
            return True  # entering the destination's community
        if taker_in and giver_in:
            return self.local_centrality(taker) > self.local_centrality(giver)
        if giver_in:
            return False  # never bubble back out of the community
        return self.global_centrality(taker) > self.global_centrality(giver)

    def _offer(self, giver: NodeState, taker: NodeState, now: float) -> None:
        results = self.ctx.results
        energy = self.ctx.config.energy
        for copy in giver.live_copies(now):
            message = copy.message
            destination = message.destination
            if taker.has_seen(message.msg_id):
                continue
            if taker.node_id != destination and not self._should_forward(
                giver.node_id, taker.node_id, destination
            ):
                continue
            results.relay_attempts += 1
            results.record_replica(message)
            results.add_energy(
                giver.node_id, energy.transfer_cost(message.size_bytes)
            )
            results.add_energy(
                taker.node_id, energy.receive_cost(message.size_bytes)
            )
            copy.relays.append(taker.node_id)
            if taker.node_id == destination:
                taker.seen.add(message.msg_id)
                results.record_delivery(message, now)
                continue
            make_room(self.ctx, taker, now)
            taker.store(
                StoredCopy(
                    message=message, received_at=now,
                    received_from=giver.node_id,
                ),
                now,
                results,
            )
            keep = taker.strategy.keep_relayed_copy(
                taker.node_id, message, giver.node_id, now
            )
            if not keep:
                taker.drop(message.msg_id, now, results)
                results.record_deviation(taker.node_id, message)
