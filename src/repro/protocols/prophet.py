"""PRoPHET: Probabilistic Routing using History of Encounters
(Lindgren, Doria, Schelén, 2003).

Not part of the Give2Get paper's evaluation; included as the classic
probabilistic single-copy-gated baseline next to Delegation
Forwarding.  Each node maintains delivery predictabilities
``P(self, x)`` for every other node:

* **direct update** on every encounter with ``b``:
  ``P(a,b) = P + (1 - P) * p_init``;
* **aging** with time: ``P = P * gamma^(dt / age_unit)``;
* **transitivity** on encounter: for every ``c``,
  ``P(a,c) = max(P(a,c), P(a,b) * P(b,c) * beta)``.

A copy is replicated to a peer whose predictability for the
destination exceeds the holder's (the GRTR strategy of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..sim.messages import Message, StoredCopy
from ..sim.node import NodeState
from ..traces.trace import NodeId
from .base import ForwardingProtocol, make_room

#: Canonical parameter values from the PRoPHET paper.
P_INIT = 0.75
GAMMA = 0.98
BETA = 0.25
AGE_UNIT = 60.0  # seconds per aging time unit


@dataclass
class _Predictability:
    """One node's predictability table with lazy aging."""

    table: Dict[NodeId, float] = field(default_factory=dict)
    last_aged: float = 0.0

    def age(self, now: float) -> None:
        """Apply exponential aging up to ``now``."""
        dt = now - self.last_aged
        if dt <= 0:
            return
        factor = GAMMA ** (dt / AGE_UNIT)
        for node in list(self.table):
            self.table[node] *= factor
            if self.table[node] < 1e-6:
                del self.table[node]
        self.last_aged = now

    def get(self, node: NodeId) -> float:
        """Current predictability towards ``node``."""
        return self.table.get(node, 0.0)


class ProphetForwarding(ForwardingProtocol):
    """PRoPHET with the GRTR forwarding strategy."""

    name = "prophet"
    family = "delegation"

    def __init__(self) -> None:
        super().__init__()
        self._predictability: Dict[NodeId, _Predictability] = {}

    def bind(self, ctx) -> None:
        super().bind(ctx)
        self._predictability = {
            node: _Predictability() for node in ctx.nodes
        }

    def predictability(self, a: NodeId, b: NodeId, now: float) -> float:
        """P(a, b) after aging to ``now`` (exposed for tests)."""
        record = self._predictability[a]
        record.age(now)
        return record.get(b)

    def _update_on_encounter(self, a: NodeId, b: NodeId, now: float) -> None:
        pa, pb = self._predictability[a], self._predictability[b]
        pa.age(now)
        pb.age(now)
        pa.table[b] = pa.get(b) + (1.0 - pa.get(b)) * P_INIT
        pb.table[a] = pb.get(a) + (1.0 - pb.get(a)) * P_INIT
        # Transitivity both ways.
        for x, px in ((a, pa), (b, pb)):
            peer_table = pb if x == a else pa
            peer = b if x == a else a
            for c, p_peer_c in list(peer_table.table.items()):
                if c == x:
                    continue
                bridged = px.get(peer) * p_peer_c * BETA
                if bridged > px.get(c):
                    px.table[c] = bridged

    def on_message_generated(self, message: Message, now: float) -> None:
        source = self.ctx.node(message.source)
        source.store(
            StoredCopy(message=message, received_at=now), now,
            self.ctx.results,
        )
        for peer in list(self.ctx.active_neighbors(message.source)):
            if self.ctx.usable_pair(message.source, peer):
                self._offer(source, self.ctx.node(peer), now)

    def on_contact_start(self, a: NodeId, b: NodeId, now: float) -> None:
        self._update_on_encounter(a, b, now)
        node_a, node_b = self.ctx.node(a), self.ctx.node(b)
        self._purge_expired(node_a, now)
        self._purge_expired(node_b, now)
        for giver, taker in ((node_a, node_b), (node_b, node_a)):
            self._offer(giver, taker, now)

    # -- internals ------------------------------------------------------

    def _purge_expired(self, node: NodeState, now: float) -> None:
        expired = [
            msg_id
            for msg_id, copy in node.buffer.items()
            if not copy.message.alive_at(now)
        ]
        for msg_id in expired:
            node.drop(msg_id, now, self.ctx.results)

    def _offer(self, giver: NodeState, taker: NodeState, now: float) -> None:
        results = self.ctx.results
        energy = self.ctx.config.energy
        for copy in giver.live_copies(now):
            message = copy.message
            destination = message.destination
            if taker.has_seen(message.msg_id):
                continue
            if taker.node_id != destination:
                p_taker = self.predictability(taker.node_id, destination, now)
                p_giver = self.predictability(giver.node_id, destination, now)
                if not p_taker > p_giver:
                    continue
            results.relay_attempts += 1
            results.record_replica(message)
            results.add_energy(
                giver.node_id, energy.transfer_cost(message.size_bytes)
            )
            results.add_energy(
                taker.node_id, energy.receive_cost(message.size_bytes)
            )
            copy.relays.append(taker.node_id)
            if taker.node_id == destination:
                taker.seen.add(message.msg_id)
                results.record_delivery(message, now)
                continue
            make_room(self.ctx, taker, now)
            taker.store(
                StoredCopy(
                    message=message, received_at=now,
                    received_from=giver.node_id,
                ),
                now,
                results,
            )
            keep = taker.strategy.keep_relayed_copy(
                taker.node_id, message, giver.node_id, now
            )
            if not keep:
                taker.drop(message.msg_id, now, results)
                results.record_deviation(taker.node_id, message)
