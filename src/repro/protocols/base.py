"""Forwarding-protocol interface and the shared simulation context.

A protocol object is bound to one simulation run via
:meth:`ForwardingProtocol.bind` and then driven by the engine through
the event hooks.  Protocols are *network-wide coordinators*: they hold
no per-run state of their own beyond what lives in the per-node
:class:`~repro.sim.node.NodeState` objects, which keeps a single
protocol implementation reusable across runs and makes node state
inspectable in tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Protocol, Set, Tuple

import random

from ..core.blacklist import BlacklistService, InstantBlacklist
from ..sim.eventlog import EventLog, EventType
from ..sim.config import SimulationConfig
from ..sim.events import Scheduler, TimerHandle, TimerOwner
from ..sim.messages import Message
from ..sim.node import NodeState
from ..sim.results import SimulationResults
from ..telemetry.run import RunTelemetry
from ..traces.trace import NodeId


class CommunityOracle(Protocol):
    """Structural interface of a community oracle.

    Anything exposing ``same_community`` qualifies — the detected
    :class:`repro.social.CommunityMap`, a synthetic trace's planted
    partition, or a test stub.  Typing the oracle as a Protocol (it
    was a bare ``Optional[object]`` before) lets strict mypy check the
    call sites in ``sim/`` and ``core/`` instead of trusting ducks.
    """

    def same_community(self, a: NodeId, b: NodeId) -> bool:
        """Whether ``a`` and ``b`` belong to one community."""
        ...  # pragma: no cover - protocol declaration


@dataclass
class SimulationContext:
    """Everything a protocol needs during a run.

    Attributes:
        config: run parameters.
        nodes: per-node runtime state.
        results: metrics sink.
        rng: protocol-side randomness (distinct stream from traffic).
        blacklist: PoM propagation service.
        community: optional community oracle (``same_community``).
        active_contacts: currently open contacts as unordered pairs.
        scheduler: the run scheduler timers route through; None only
            in hand-built contexts that never touch timers.
        telemetry: the run's metrics registry + span recorder; the
            engine folds run totals into it at run end and attaches
            its snapshot to ``results.telemetry``.
        energy_budgets: optional per-node energy budgets (joules);
            empty for the paper's unbounded-battery setting.  A node
            whose cumulative spend reaches its budget is marked
            ``depleted`` at the next :meth:`check_energy` and stops
            participating (see docs/scenarios.md).
        lazy_nodes: True when ``nodes`` is a lazy table over a
            streaming source's universe — protocols must not iterate
            or size it during ``bind`` (it only holds *touched* nodes)
            and should build their own per-node maps lazily too.
    """

    config: SimulationConfig
    nodes: Dict[NodeId, NodeState]
    results: SimulationResults
    rng: random.Random
    blacklist: BlacklistService = field(default_factory=InstantBlacklist)
    community: Optional[CommunityOracle] = None
    active_contacts: Set[frozenset] = field(default_factory=set)
    events: EventLog = field(default_factory=lambda: EventLog(enabled=False))
    scheduler: Optional[Scheduler] = None
    telemetry: RunTelemetry = field(default_factory=RunTelemetry)
    energy_budgets: Dict[NodeId, float] = field(default_factory=dict)
    lazy_nodes: bool = False

    def node(self, node_id: NodeId) -> NodeState:
        """Runtime state of ``node_id``."""
        return self.nodes[node_id]

    # -- scheduler passthroughs ----------------------------------------

    def schedule(
        self,
        time: float,
        tag: str,
        payload: Any = None,
        owner: Optional[TimerOwner] = None,
    ) -> TimerHandle:
        """Register a timer with the run scheduler.

        Without an explicit ``owner`` the dispatch goes to the
        scheduler's default owner (the bound protocol).  In a
        hand-built context with no scheduler the handle comes back
        already cancelled — deferred work simply never fires, matching
        a run that ends before the deadline.
        """
        if self.scheduler is None:
            # g2g: allow(G2G012: inert (born-cancelled) handle; it never enters a queue)
            return TimerHandle(
                time=time, tag=tag, payload=payload, owner=owner,
                cancelled=True,
            )
        return self.scheduler.schedule(time, tag, payload=payload, owner=owner)

    def cancel(self, handle: TimerHandle) -> None:
        """Cancel a pending timer (idempotent)."""
        if self.scheduler is not None:
            self.scheduler.cancel(handle)

    def flush_timers(self, now: float) -> None:
        """Dispatch timers strictly before ``now``.

        Harness hook: protocols call this on entry to their contact
        hooks so tests that drive hooks directly (no engine loop)
        still advance timers.  Under ``Simulation.run()`` it is a
        guaranteed no-op — the loop has already popped everything
        strictly before the event being dispatched.
        """
        if self.scheduler is not None:
            self.scheduler.dispatch_until(now)

    def active_neighbors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Peers currently in contact with ``node_id`` (participating)."""
        for pair in self.active_contacts:
            if node_id in pair:
                (peer,) = pair - {node_id}
                if self.nodes[peer].participating:
                    yield peer

    def usable_pair(self, a: NodeId, b: NodeId) -> bool:
        """True when a session between ``a`` and ``b`` can open.

        Evicted, churned-out, and energy-depleted nodes cannot open
        sessions at all; otherwise each endpoint refuses if it knows
        the peer is convicted.
        """
        node_a, node_b = self.nodes[a], self.nodes[b]
        if not (node_a.participating and node_b.participating):
            return False
        return not (
            self.blacklist.knows(a, b) or self.blacklist.knows(b, a)
        )

    def check_energy(self, node_id: NodeId, now: float) -> None:
        """Deplete ``node_id`` if its spend reached its budget.

        A no-op without budgets (the paper's setting) and for nodes
        without one.  Depletion is checked *between* protocol
        exchanges, never inside one: the handshake that crosses the
        budget still completes — a device does not brown out halfway
        through signing — and the node goes dark afterwards.  The
        buffer is deliberately kept (storage outlives the radio), so
        memory keeps accruing while participation stops.
        """
        budget = self.energy_budgets.get(node_id)
        if budget is None:
            return
        node = self.nodes[node_id]
        if node.depleted:
            return
        if self.results.energy.get(node_id, 0.0) >= budget:
            node.depleted = True
            self.telemetry.registry.inc("run.energy_depletions")
            self.events.log(now, EventType.DEPLETED, actor=node_id)

    def evict(self, offender: NodeId, now: float) -> None:
        """Remove a convicted node from the network.

        With the instant blacklist this is global and final; with
        gossip, the node stays "physically" present but is recorded as
        evicted once conviction becomes network-wide knowledge is not
        required — the simulator considers the first conviction the
        eviction instant for metric purposes.
        """
        node = self.nodes[offender]
        if node.evicted:
            return
        node.evicted = True
        node.flush(now, self.results)
        self.results.record_eviction(offender, now)
        self.events.log(now, EventType.EVICTED, actor=offender)

    def same_community(self, a: NodeId, b: NodeId) -> bool:
        """Community oracle passthrough.

        Raises:
            RuntimeError: if no community oracle was configured.
        """
        if self.community is None:
            raise RuntimeError("no community oracle configured")
        return self.community.same_community(a, b)


class ForwardingProtocol(ABC):
    """Base class of all forwarding protocols.

    Lifecycle: ``bind(ctx)`` once per run, then the engine calls
    ``on_message_generated`` / ``on_contact_start`` / ``on_contact_end``
    / ``on_timer`` in event order and ``finalize`` at the end of the
    run.
    """

    #: Human-readable protocol name (used in result tables).
    name: str = "abstract"
    #: TTL family: "epidemic" or "delegation" (selects the paper TTL).
    family: str = "epidemic"

    def __init__(self) -> None:
        self.ctx: Optional[SimulationContext] = None

    def bind(self, ctx: SimulationContext) -> None:
        """Attach the protocol to a run; subclasses extend."""
        self.ctx = ctx

    @abstractmethod
    def on_message_generated(self, message: Message, now: float) -> None:
        """A new message appeared at its source."""

    @abstractmethod
    def on_contact_start(self, a: NodeId, b: NodeId, now: float) -> None:
        """Two nodes came into range."""

    def on_contact_end(self, a: NodeId, b: NodeId, now: float) -> None:
        """Two nodes left range (default: nothing to do)."""

    def on_timer(self, tag: str, payload: Any, now: float) -> None:
        """A timer scheduled for this protocol fired (default: no-op).

        Dispatched by the engine in global event order; ``TIMER``
        events sort after every contact and generation at the same
        instant, so the hook observes the post-contact state of its
        timestamp.
        """

    def finalize(self, now: float) -> None:
        """End-of-run cleanup (default: settle node accounting)."""
        assert self.ctx is not None
        for node in self.ctx.nodes.values():
            node.flush(now, self.ctx.results)


def exchange_pairs(a: NodeId, b: NodeId) -> Tuple[Tuple[NodeId, NodeId], ...]:
    """Both directed orderings of a contact, deterministic order."""
    return ((a, b), (b, a))


def make_room(ctx: SimulationContext, node: NodeState, now: float) -> None:
    """Enforce the configured buffer capacity before a new store.

    The paper assumes infinite buffers; with a finite
    ``config.buffer_capacity`` the node evicts the buffered body
    closest to its TTL expiry (the copy with the least forwarding
    future).  In G2G runs an evicted body can later cost the node a
    failed storage challenge — the realistic memory-pressure risk the
    finite-buffer ablation quantifies.
    """
    capacity = ctx.config.buffer_capacity
    if capacity is None:
        return
    bodies = [
        copy for copy in node.buffer.values() if not copy.body_dropped
    ]
    while len(bodies) >= capacity:
        # Risk-aware victim choice: a node's *own* messages carry no
        # test obligation, so they go first; among relayed bodies the
        # earliest-expiring one has the least forwarding future left.
        victim = min(
            bodies,
            key=lambda c: (
                c.message.source != node.node_id,
                c.message.expires_at,
            ),
        )
        node.drop(victim.message.msg_id, now, ctx.results)
        ctx.results.buffer_evictions += 1
        ctx.events.log(
            now,
            EventType.BUFFER_EVICTED,
            msg_id=victim.message.msg_id,
            actor=node.node_id,
        )
        bodies.remove(victim)
