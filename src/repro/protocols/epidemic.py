"""Vanilla Epidemic Forwarding (Vahdat & Becker, 2000).

"In Epidemic Forwarding, every contact is used as an opportunity to
forward messages.  If node A meets node B, and A has a message that B
does not have, the message is relayed to node B." (Sec. IV)

Epidemic is the paper's benchmark: optimal delay and success rate at
maximal cost.  The TTL (Δ1) bounds relaying; nodes remember handled
message ids (the summary-vector mechanism) so a copy is never pushed
twice to the same node — which also means a selfish dropper does not
re-receive what it silently discarded.
"""

from __future__ import annotations

from ..sim.messages import Message, StoredCopy
from ..sim.node import NodeState
from ..traces.trace import NodeId
from .base import ForwardingProtocol, make_room


class EpidemicForwarding(ForwardingProtocol):
    """Flood every live message to every node that has not seen it."""

    name = "epidemic"
    family = "epidemic"

    def on_message_generated(self, message: Message, now: float) -> None:
        source = self.ctx.node(message.source)
        source.store(
            StoredCopy(message=message, received_at=now), now, self.ctx.results
        )
        # A message born during a contact spreads immediately.
        for peer in list(self.ctx.active_neighbors(message.source)):
            if self.ctx.usable_pair(message.source, peer):
                self._offer(source, self.ctx.node(peer), now)

    def on_contact_start(self, a: NodeId, b: NodeId, now: float) -> None:
        node_a, node_b = self.ctx.node(a), self.ctx.node(b)
        self._purge_expired(node_a, now)
        self._purge_expired(node_b, now)
        for giver, taker in ((node_a, node_b), (node_b, node_a)):
            self._offer(giver, taker, now)

    # -- internals ------------------------------------------------------

    def _purge_expired(self, node: NodeState, now: float) -> None:
        """Free buffer space held by expired copies."""
        expired = [
            msg_id
            for msg_id, copy in node.buffer.items()
            if not copy.message.alive_at(now)
        ]
        for msg_id in expired:
            node.drop(msg_id, now, self.ctx.results)

    def _offer(self, giver: NodeState, taker: NodeState, now: float) -> None:
        """Relay every live copy of ``giver`` that ``taker`` lacks."""
        results = self.ctx.results
        energy = self.ctx.config.energy
        for copy in giver.live_copies(now):
            message = copy.message
            if taker.has_seen(message.msg_id):
                continue
            results.relay_attempts += 1
            results.record_replica(message)
            results.add_energy(
                giver.node_id, energy.transfer_cost(message.size_bytes)
            )
            results.add_energy(
                taker.node_id, energy.receive_cost(message.size_bytes)
            )
            copy.relays.append(taker.node_id)
            if taker.node_id == message.destination:
                taker.seen.add(message.msg_id)
                results.record_delivery(message, now)
                continue
            make_room(self.ctx, taker, now)
            taker.store(
                StoredCopy(
                    message=message,
                    received_at=now,
                    received_from=giver.node_id,
                ),
                now,
                results,
            )
            keep = taker.strategy.keep_relayed_copy(
                taker.node_id, message, giver.node_id, now
            )
            if not keep:
                taker.drop(message.msg_id, now, results)
                results.record_deviation(taker.node_id, message)
