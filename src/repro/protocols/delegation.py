"""Vanilla Delegation Forwarding (Erramilli, Crovella, Chaintreau, Diot).

"When a relay node A gets in contact with a possible further relay B,
node A checks whether the forwarding quality of B is higher than the
forwarding quality of the message.  If this is the case, node A
creates a replica of the message, labels both messages with the
forwarding quality of node B, and forwards one of the two replicas to
B.  Otherwise, the message is not forwarded." (Sec. VI)

Messages are born labelled with the sender's quality.  Meeting the
destination always delivers.  Liars (declaring quality zero) never
qualify as relays — the free-riding the G2G variant punishes; droppers
accept and silently discard.
"""

from __future__ import annotations

from typing import Any

from ..sim.messages import Message, StoredCopy
from ..sim.node import NodeState
from ..traces.trace import NodeId
from .base import ForwardingProtocol, make_room
from .quality import FRAME_TIMER_TAG, QualityTracker


class DelegationForwarding(ForwardingProtocol):
    """Quality-gated replication, Destination Frequency / Last Contact."""

    family = "delegation"

    def __init__(self, variant: str = "last_contact") -> None:
        super().__init__()
        self.variant = variant
        self.name = f"delegation_{variant}"
        self.tracker: QualityTracker | None = None

    def bind(self, ctx) -> None:
        super().bind(ctx)
        self.tracker = QualityTracker(
            self.variant, ctx.config.quality_timeframe
        )
        self.tracker.schedule_rollover(ctx)

    def on_timer(self, tag: str, payload: Any, now: float) -> None:
        if tag == FRAME_TIMER_TAG:
            self.tracker.handle_frame_timer(self.ctx, payload, now)
        else:
            super().on_timer(tag, payload, now)

    def on_message_generated(self, message: Message, now: float) -> None:
        source = self.ctx.node(message.source)
        quality = self.tracker.current(
            message.source, message.destination, now
        )
        source.store(
            StoredCopy(message=message, received_at=now, quality=quality),
            now,
            self.ctx.results,
        )
        for peer in list(self.ctx.active_neighbors(message.source)):
            if self.ctx.usable_pair(message.source, peer):
                self._offer(source, self.ctx.node(peer), now)

    def on_contact_start(self, a: NodeId, b: NodeId, now: float) -> None:
        self.ctx.flush_timers(now)
        self.tracker.encounter(a, b, now)
        node_a, node_b = self.ctx.node(a), self.ctx.node(b)
        self._purge_expired(node_a, now)
        self._purge_expired(node_b, now)
        for giver, taker in ((node_a, node_b), (node_b, node_a)):
            self._offer(giver, taker, now)

    # -- internals ------------------------------------------------------

    def _purge_expired(self, node: NodeState, now: float) -> None:
        expired = [
            msg_id
            for msg_id, copy in node.buffer.items()
            if not copy.message.alive_at(now)
        ]
        for msg_id in expired:
            node.drop(msg_id, now, self.ctx.results)

    def _transfer(
        self,
        giver: NodeState,
        taker: NodeState,
        copy: StoredCopy,
        now: float,
        quality: float,
    ) -> None:
        """Account one replica moving from ``giver`` to ``taker``."""
        message = copy.message
        results = self.ctx.results
        energy = self.ctx.config.energy
        results.relay_attempts += 1
        results.record_replica(message)
        results.add_energy(
            giver.node_id, energy.transfer_cost(message.size_bytes)
        )
        results.add_energy(
            taker.node_id, energy.receive_cost(message.size_bytes)
        )
        copy.relays.append(taker.node_id)

    def _offer(self, giver: NodeState, taker: NodeState, now: float) -> None:
        """Run the delegation rule on every live copy of ``giver``."""
        results = self.ctx.results
        for copy in giver.live_copies(now):
            message = copy.message
            destination = message.destination
            if taker.node_id == destination:
                if not taker.has_seen(message.msg_id):
                    self._transfer(giver, taker, copy, now, copy.quality)
                    taker.seen.add(message.msg_id)
                    results.record_delivery(message, now)
                continue
            if taker.has_seen(message.msg_id):
                continue
            true_quality = self.tracker.current(
                taker.node_id, destination, now
            )
            declared = taker.strategy.declared_quality(
                taker.node_id, destination, true_quality, giver.node_id, now
            )
            if declared != true_quality:
                results.record_deviation(taker.node_id, message)
            if not self.tracker.better(declared, copy.quality):
                continue
            # Label both replicas with the (declared) quality of B.
            self._transfer(giver, taker, copy, now, declared)
            copy.quality = declared
            make_room(self.ctx, taker, now)
            taker.store(
                StoredCopy(
                    message=message,
                    received_at=now,
                    received_from=giver.node_id,
                    quality=declared,
                ),
                now,
                results,
            )
            keep = taker.strategy.keep_relayed_copy(
                taker.node_id, message, giver.node_id, now
            )
            if not keep:
                taker.drop(message.msg_id, now, results)
                results.record_deviation(taker.node_id, message)
