"""Deterministic telemetry exporters: JSONL records + Prometheus text.

Two export shapes, both derived from :meth:`RunTelemetry.snapshot`:

* **JSONL** — one ``run`` record per line (schema below), written with
  sorted keys and compact separators so identical runs produce
  byte-identical lines.  ``repro telemetry summarize <dir>`` merges
  every ``*.jsonl`` under a directory back into one snapshot.
* **Prometheus-style text** — a human-greppable summary (``# TYPE``
  comments plus ``name value`` lines, metric dots mapped to
  underscores).  Meant for eyeballs and scrape-shaped tooling, not as
  a parse-it-back format — JSONL is the round-trippable one.

Record schema (version :data:`TELEMETRY_SCHEMA_VERSION`)::

    {"schema": 1, "kind": "run",
     "protocol": str, "trace": str, "seed": int,
     "summary": {... SimulationResults.summary() ...},
     "telemetry": {"counters": {...}, "gauges": {...},
                   "histograms": {...}, "spans": {...}}}
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from .registry import TELEMETRY_SCHEMA_VERSION
from .run import merge_run_snapshots


def run_record(results: Any) -> Dict[str, object]:
    """Build the JSONL ``run`` record for one finished run.

    ``results`` is a ``SimulationResults`` with its ``telemetry``
    snapshot attached (the engine attaches one to every run).
    """
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "kind": "run",
        "protocol": results.protocol,
        "trace": results.trace,
        "seed": results.seed,
        "summary": results.summary(),
        "telemetry": results.telemetry or {},
    }


def record_line(record: Dict[str, object]) -> str:
    """Canonical single-line JSON encoding of one record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_jsonl(path: str, records: Iterable[Dict[str, object]]) -> int:
    """Append ``records`` to ``path`` (one per line); returns the count."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    written = 0
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(record_line(record) + "\n")
            written += 1
    return written


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse every record in one JSONL file."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_record(record: object) -> List[str]:
    """Schema problems in one record (empty list means valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {type(record).__name__}"]
    schema = record.get("schema")
    if schema != TELEMETRY_SCHEMA_VERSION:
        problems.append(
            f"schema must be {TELEMETRY_SCHEMA_VERSION}, got {schema!r}"
        )
    if record.get("kind") != "run":
        problems.append(f"kind must be 'run', got {record.get('kind')!r}")
    for key, kinds in (
        ("protocol", str), ("trace", str), ("seed", int),
        ("summary", dict), ("telemetry", dict),
    ):
        if not isinstance(record.get(key), kinds):
            problems.append(
                f"{key} must be {kinds.__name__}, "
                f"got {type(record.get(key)).__name__}"
            )
    telemetry = record.get("telemetry")
    if isinstance(telemetry, dict) and telemetry:
        for section in ("counters", "gauges", "histograms", "spans"):
            if not isinstance(telemetry.get(section), dict):
                problems.append(f"telemetry.{section} must be an object")
    return problems


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def to_prometheus(snapshot: Dict[str, object]) -> str:
    """Prometheus-style text rendering of a (merged) snapshot."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, entry in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += entry["counts"][-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {entry['sum']}")
        lines.append(f"{prom}_count {entry['count']}")
    for name, entry in snapshot.get("spans", {}).items():
        prom = _prom_name(f"span.{name}")
        lines.append(f"# TYPE {prom}_total counter")
        lines.append(f"{prom}_total {entry['count']}")
        for field, value in entry["ops"].items():
            lines.append(f"{prom}_ops_{_prom_name(field)} {value}")
    return "\n".join(lines) + "\n"


def summarize_dir(directory: str) -> Dict[str, object]:
    """Merge every record under ``directory``'s ``*.jsonl`` files.

    Files and records are folded in sorted-filename / line order, so
    the merged snapshot is reproducible for a given directory state.
    Invalid records raise ``ValueError`` naming the file.
    """
    snapshots: List[Optional[Dict[str, Any]]] = []
    runs = 0
    names = sorted(
        entry for entry in os.listdir(directory) if entry.endswith(".jsonl")
    )
    for entry in names:
        path = os.path.join(directory, entry)
        for record in read_jsonl(path):
            problems = validate_record(record)
            if problems:
                raise ValueError(f"{path}: {'; '.join(problems)}")
            runs += 1
            snapshots.append(record["telemetry"] or None)
    merged = merge_run_snapshots(snapshots)
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "kind": "summary",
        "runs": runs,
        "files": len(names),
        "telemetry": merged,
    }


class TelemetryCollector:
    """Accumulates run results for cross-run aggregation and export.

    One collector per experiment invocation: the parallel runner (or
    the API facade) feeds it every finished run's results in request
    order, and it can then produce the merged snapshot or append the
    per-run records to a JSONL file.  Runs without a telemetry
    snapshot — notably **cache hits**, whose results round-trip
    through the JSON run cache which does not persist telemetry — are
    counted separately and excluded from the merge.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self.skipped = 0

    def add(self, results: Any) -> None:
        """Fold one finished run in (in completion-merge order)."""
        if getattr(results, "telemetry", None) is None:
            self.skipped += 1
            return
        self.records.append(run_record(results))

    def merged(self) -> Dict[str, object]:
        """Merged snapshot over every collected run."""
        return merge_run_snapshots(
            [record["telemetry"] for record in self.records]
        )

    def write_jsonl(self, path: str) -> int:
        """Append every collected run record to ``path``."""
        return write_jsonl(path, self.records)
