"""Span tracing over the Give2Get protocol phases.

A *span* here is deliberately lightweight: the recorder does not keep
one record per occurrence (a full run has hundreds of thousands of
phase executions), it keeps one aggregate per span *name* — count,
total crypto-op deltas, and the first/last simulation times the span
was seen.  That is exactly what the paper-level questions need ("how
much signing does the relay handshake cost vs the sender test?") while
staying result-neutral and cheap enough for the hot path.

Span timing uses **simulation time only** — wall-clock reads are
banned in this package by lint rule G2G002, and wall times would break
the cross-worker merge-equality contract anyway.

Usage::

    token = recorder.begin(now)
    ...  # phase body
    recorder.end(SPAN_RELAY_HANDSHAKE, token, now)

Spans may nest (the destination test runs inside a relay handshake);
op deltas then count toward *both* spans, which is the intended
reading — each span reports the ops performed while it was open.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..perf import COUNTERS

#: Protocol-phase span names (the taxonomy documented in
#: docs/observability.md).  Keep in sync with the instrumentation in
#: repro.core.g2g_base.
SPAN_RELAY_HANDSHAKE = "relay_handshake"
SPAN_SENDER_TEST = "sender_test"
SPAN_DESTINATION_TEST = "destination_test"
SPAN_POM = "pom_eviction"

ALL_SPANS: Tuple[str, ...] = (
    SPAN_RELAY_HANDSHAKE,
    SPAN_SENDER_TEST,
    SPAN_DESTINATION_TEST,
    SPAN_POM,
)

#: Perf-counter fields whose per-span deltas are worth attributing to
#: a protocol phase.  A subset of ``repro.perf.FIELDS``: the expensive
#: crypto/wire operations.
SPAN_OP_FIELDS: Tuple[str, ...] = (
    "signatures",
    "verifications",
    "encodings",
    "hmac_copies",
)

#: A begin() token: the op-counter readings when the span opened plus
#: the simulation time.
SpanToken = Tuple[int, int, int, int, float]


class SpanAggregate:
    """Folded statistics for every execution of one span name.

    Op deltas live in one plain int slot per field (not a dict): the
    recorder closes ~44k spans per cambridge06 run, and four dict
    lookups per close were measurable on the hot path.  ``snapshot``
    rebuilds the documented ``ops`` mapping.
    """

    __slots__ = (
        "count",
        "signatures",
        "verifications",
        "encodings",
        "hmac_copies",
        "first_time",
        "last_time",
    )

    def __init__(self) -> None:
        self.count = 0
        self.signatures = 0
        self.verifications = 0
        self.encodings = 0
        self.hmac_copies = 0
        self.first_time = 0.0
        self.last_time = 0.0


class SpanRecorder:
    """Aggregating span recorder for one simulation run."""

    __slots__ = ("_spans",)

    def __init__(self) -> None:
        self._spans: Dict[str, SpanAggregate] = {}

    def begin(self, now: float) -> SpanToken:
        """Open a span: capture the current op-counter readings."""
        return (
            COUNTERS.signatures,
            COUNTERS.verifications,
            COUNTERS.encodings,
            COUNTERS.hmac_copies,
            now,
        )

    def end(self, name: str, token: SpanToken, now: float) -> None:
        """Close the span opened by ``token`` under ``name``."""
        aggregate = self._spans.get(name)
        if aggregate is None:
            aggregate = self._spans[name] = SpanAggregate()
            aggregate.first_time = token[4]
        aggregate.count += 1
        aggregate.signatures += COUNTERS.signatures - token[0]
        aggregate.verifications += COUNTERS.verifications - token[1]
        aggregate.encodings += COUNTERS.encodings - token[2]
        aggregate.hmac_copies += COUNTERS.hmac_copies - token[3]
        if token[4] < aggregate.first_time:
            aggregate.first_time = token[4]
        if now > aggregate.last_time:
            aggregate.last_time = now
        COUNTERS.spans_recorded += 1

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able, key-sorted aggregate per span name."""
        return {
            name: {
                "count": aggregate.count,
                "ops": {
                    field: getattr(aggregate, field)
                    for field in SPAN_OP_FIELDS
                },
                "first_time": aggregate.first_time,
                "last_time": aggregate.last_time,
            }
            for name, aggregate in sorted(self._spans.items())
        }
