"""Per-adversary-class telemetry of scenario runs.

Campaign runs carry mixed populations (see ``repro.scenarios``): the
same run holds honest nodes, droppers, liars, ... at once, and the
interesting questions — who spent the energy, who got convicted — are
*per class*, not per run.  This module derives those breakdowns from a
finished :class:`~repro.sim.results.SimulationResults` plus the run's
role map and exposes them as flat metric keys::

    scenario.class.<class>.nodes        members of the class
    scenario.class.<class>.energy       joules spent by the class
    scenario.class.<class>.detections   PoMs issued against the class
    scenario.class.<class>.evictions    members evicted by run end

``<class>`` is an adversary kind ("dropper", "liar", ...) or
``honest`` (every node not assigned a role).  The keys are injected
into run records **campaign-side**, as plain counters: counters add
under the standard merge, so a campaign's merged snapshot aggregates
each class across replications with no new merge semantics.

Everything here reads only serialized result fields (``energy``,
``detections``, ``evicted_at``), so the breakdown is computable for
cache hits too — unlike span telemetry, which only live runs carry.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Sequence, Tuple

from ..traces.trace import NodeId


def population_metrics(
    nodes: Iterable[NodeId],
    roles: Mapping[str, Sequence[NodeId]],
    results: Any,
) -> Dict[str, float]:
    """Per-class metric keys for one finished run.

    Args:
        nodes: every node of the run's trace (defines the honest
            remainder).
        roles: adversary class -> member nodes (as produced by
            :meth:`repro.experiments.parallel.RunRequest.roles`).
        results: the run's ``SimulationResults``.

    Returns:
        Key-sorted flat mapping of ``scenario.class.*`` metrics.
    """
    assigned = set()
    classes: Dict[str, Tuple[NodeId, ...]] = {}
    for kind in sorted(roles):
        members = tuple(sorted(roles[kind]))
        classes[kind] = members
        assigned.update(members)
    classes["honest"] = tuple(
        sorted(node for node in nodes if node not in assigned)
    )
    offenses: Dict[NodeId, int] = {}
    for detection in results.detections:
        offenses[detection.offender] = offenses.get(detection.offender, 0) + 1
    metrics: Dict[str, float] = {}
    for kind in sorted(classes):
        members = classes[kind]
        prefix = f"scenario.class.{kind}"
        energy = 0.0
        detections = 0
        evictions = 0
        for node in members:  # sorted: float sums fold identically
            energy += results.energy.get(node, 0.0)
            detections += offenses.get(node, 0)
            if node in results.evicted_at:
                evictions += 1
        metrics[f"{prefix}.nodes"] = float(len(members))
        metrics[f"{prefix}.energy"] = energy
        metrics[f"{prefix}.detections"] = float(detections)
        metrics[f"{prefix}.evictions"] = float(evictions)
    return metrics


def inject_population_metrics(
    record: Dict[str, Any], metrics: Mapping[str, float]
) -> None:
    """Fold per-class metrics into a JSONL run record's counters.

    Counters add under :func:`~repro.telemetry.registry.merge_metric_snapshots`,
    so merged campaign snapshots aggregate each class across runs.
    """
    telemetry = record.setdefault("telemetry", {})
    counters = telemetry.setdefault("counters", {})
    for name in sorted(metrics):
        counters[name] = counters.get(name, 0) + metrics[name]
