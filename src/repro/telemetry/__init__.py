"""Run telemetry: metrics registry, span tracing, deterministic export.

The observability layer the parallel experiment harness was missing:
per-run :class:`MetricsRegistry` snapshots (subsuming the process-wide
``repro.perf.COUNTERS`` readings), protocol-phase span aggregates, and
exporters (JSONL per run, Prometheus-style text) whose merged output
is bit-identical whether the runs executed sequentially or across a
worker pool.  See docs/observability.md for the full catalogue and
merge semantics.
"""

from .export import (
    TelemetryCollector,
    read_jsonl,
    record_line,
    run_record,
    summarize_dir,
    to_prometheus,
    validate_record,
    write_jsonl,
)
from .population import inject_population_metrics, population_metrics
from .registry import (
    DEFAULT_TIME_BUCKETS,
    TELEMETRY_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_metric_snapshots,
)
from .run import RunTelemetry, merge_run_snapshots
from .spans import (
    ALL_SPANS,
    SPAN_DESTINATION_TEST,
    SPAN_POM,
    SPAN_RELAY_HANDSHAKE,
    SPAN_SENDER_TEST,
    SpanRecorder,
)

__all__ = [
    "ALL_SPANS",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTelemetry",
    "SPAN_DESTINATION_TEST",
    "SPAN_POM",
    "SPAN_RELAY_HANDSHAKE",
    "SPAN_SENDER_TEST",
    "SpanRecorder",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryCollector",
    "inject_population_metrics",
    "merge_metric_snapshots",
    "population_metrics",
    "merge_run_snapshots",
    "read_jsonl",
    "record_line",
    "run_record",
    "summarize_dir",
    "to_prometheus",
    "validate_record",
    "write_jsonl",
]
