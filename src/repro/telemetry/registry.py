"""Run-scoped metrics: counters, gauges, and histograms.

The registry is the accumulation half of the telemetry subsystem: one
:class:`MetricsRegistry` per simulation run, filled by the engine (and
anything holding the run's :class:`~repro.telemetry.RunTelemetry`),
snapshotted into plain JSON-able dicts at run end, and merged across
runs — including runs that executed in different worker processes —
with deterministic semantics:

* **counters** add.  Integer counters merge exactly; float counters
  (energy totals) are folded in run order, so the merged value is
  bit-identical however the runs were *executed* (``workers=1`` and
  ``workers=N`` fold the same snapshots in the same request order).
* **gauges** take the maximum.  A gauge is a per-run level (horizon,
  node count); the max is associative and order-independent.
* **histograms** add bucket-wise.  Bucket bounds are part of the
  snapshot and must match between merge operands.

Everything here is deterministic by construction: no wall clock, no
randomness, no iteration over unordered containers in snapshots
(output dicts are key-sorted).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Version of the snapshot layout (and of the JSONL records built from
#: it in :mod:`repro.telemetry.export`).  Bump on breaking changes.
TELEMETRY_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds, in simulation seconds —
#: chosen for the delay-like quantities the paper reports (minutes to
#: a couple of hours).  The implicit final bucket is +inf.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    60.0, 300.0, 600.0, 1200.0, 1800.0, 3600.0, 7200.0,
)

Number = Union[int, float]


class Counter:
    """A monotonically increasing metric (int or float)."""

    __slots__ = ("value",)

    def __init__(self, value: Number = 0) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time level; merges by maximum."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        """Replace the current level."""
        self.value = value


class Histogram:
    """A fixed-bucket histogram (cumulative-style bounds).

    ``bounds`` are the upper edges of the finite buckets; one extra
    overflow bucket catches everything above the last bound.  Fixed
    bounds are what makes cross-worker merging exact: histograms with
    identical bounds add bucket-wise.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds!r}")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """A named bundle of counters, gauges, and histograms for one run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors (create on first use) -------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created at zero if new)."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created at zero if new)."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        """The histogram called ``name`` (created with ``bounds`` if new)."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    # -- one-shot conveniences ------------------------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name, bounds).observe(value)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain, JSON-able, key-sorted form of every metric."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }


def _merge_histogram(into: Dict[str, Any], entry: Dict[str, Any]) -> None:
    if into["bounds"] != entry["bounds"]:
        raise ValueError(
            f"cannot merge histograms with different bounds: "
            f"{into['bounds']!r} vs {entry['bounds']!r}"
        )
    into["counts"] = [a + b for a, b in zip(into["counts"], entry["counts"])]
    into["sum"] += entry["sum"]
    into["count"] += entry["count"]


def merge_metric_snapshots(
    snapshots: Iterable[Optional[Dict[str, Any]]],
) -> Dict[str, Any]:
    """Fold registry snapshots into one, in iteration order.

    ``None`` entries (runs without telemetry, e.g. cache hits) are
    skipped.  Counters add, gauges max, histograms add bucket-wise —
    see the module docstring for why this makes the merged totals
    independent of *where* each run executed.
    """
    counters: Dict[str, Number] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        if snapshot is None:
            continue
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, entry in snapshot.get("histograms", {}).items():
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = {
                    "bounds": list(entry["bounds"]),
                    "counts": list(entry["counts"]),
                    "sum": entry["sum"],
                    "count": entry["count"],
                }
            else:
                _merge_histogram(existing, entry)
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {
            name: histograms[name] for name in sorted(histograms)
        },
    }
