"""Per-run telemetry bundle: one registry + one span recorder.

The engine creates a :class:`RunTelemetry` for every run (it lives on
the :class:`~repro.protocols.base.SimulationContext`), the protocol's
phase instrumentation records spans into it, and the engine folds the
run's totals into the registry at run end via :meth:`finalize_run`.

Metric namespaces (see docs/observability.md for the full catalogue):

* ``run.*``    — headline result-derived counts (generated, delivered,
  detections, ...).  Redundant with ``SimulationResults`` by design:
  they make merged multi-run exports self-describing.
* ``ops.*``    — the per-run delta of :data:`repro.perf.COUNTERS`
  (the readings the parallel fan-out used to silently discard).
* ``engine.*`` — event-loop dispatch counts by event kind.
* ``events.*`` — ``EventLog`` entry counts by type, only when
  ``config.track_events`` enabled the log.

Everything recorded here is derived from deterministic run state, so
run snapshots — and therefore merged totals — are independent of which
worker process executed the run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from .registry import MetricsRegistry
from .spans import SpanRecorder

#: Result fields folded into ``run.*`` counters, in export order.
_RESULT_COUNTERS = (
    "heavy_hmac_runs",
    "relay_attempts",
    "test_phases",
    "buffer_evictions",
    "session_refusals",
)


class RunTelemetry:
    """Telemetry state for exactly one simulation run."""

    __slots__ = ("registry", "spans")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder()

    def finalize_run(
        self,
        ops_diff: Mapping[str, int],
        engine_counts: Mapping[str, int],
        results: Any,
    ) -> None:
        """Fold the run's totals into the registry (engine calls this).

        Args:
            ops_diff: per-run ``COUNTERS.diff(before)`` reading.
            engine_counts: event-loop dispatch counts by kind name.
            results: the run's ``SimulationResults``.
        """
        registry = self.registry
        for name, value in ops_diff.items():
            registry.inc(f"ops.{name}", value)
        for name in sorted(engine_counts):
            registry.inc(f"engine.{name}", engine_counts[name])
        registry.inc("run.count")
        registry.inc("run.generated", results.generated)
        registry.inc("run.delivered", results.delivered)
        registry.inc("run.detections", len(results.detections))
        registry.inc("run.evictions", len(results.evicted_at))
        for name in _RESULT_COUNTERS:
            registry.inc(f"run.{name}", getattr(results, name))
        registry.inc("run.energy_joules", results.total_energy)
        registry.set_gauge("run.nodes", float(len(results.energy) or 0))
        for delay in results.delays():
            registry.observe("run.delivery_delay_seconds", delay)
        events = results.events
        if events is not None and getattr(events, "enabled", False):
            for name, count in events.type_counts().items():
                registry.inc(f"events.{name}", count)

    def snapshot(self) -> Dict[str, object]:
        """JSON-able snapshot: registry metrics + span aggregates."""
        snapshot = self.registry.snapshot()
        snapshot["spans"] = self.spans.snapshot()
        return snapshot


def merge_run_snapshots(
    snapshots: List[Optional[Dict[str, Any]]],
) -> Dict[str, Any]:
    """Merge :meth:`RunTelemetry.snapshot` dicts, spans included.

    Span aggregates merge like their fields suggest: counts and op
    totals add, ``first_time`` takes the min, ``last_time`` the max.
    """
    from .registry import merge_metric_snapshots

    merged = merge_metric_snapshots(snapshots)
    spans: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        if snapshot is None:
            continue
        for name, entry in snapshot.get("spans", {}).items():
            existing = spans.get(name)
            if existing is None:
                spans[name] = {
                    "count": entry["count"],
                    "ops": dict(entry["ops"]),
                    "first_time": entry["first_time"],
                    "last_time": entry["last_time"],
                }
            else:
                existing["count"] += entry["count"]
                for field, value in entry["ops"].items():
                    existing["ops"][field] = (
                        existing["ops"].get(field, 0) + value
                    )
                existing["first_time"] = min(
                    existing["first_time"], entry["first_time"]
                )
                existing["last_time"] = max(
                    existing["last_time"], entry["last_time"]
                )
    merged["spans"] = {name: spans[name] for name in sorted(spans)}
    return merged
