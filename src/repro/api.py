"""The stable public API facade: ``repro.api.run`` and ``repro.api.sweep``.

These two functions are the blessed entry points for driving the
reproduction programmatically.  They wrap the lower-level machinery —
:class:`repro.sim.Simulation`, :func:`repro.sim.run_simulation`,
:func:`repro.experiments.run_point` / ``run_series`` — behind a small,
keyword-driven surface that accepts names where the paper setting has
one (trace names, catalog protocol names, adversary kinds) and objects
where callers built their own.

The wrapped entry points are **not** deprecated in the breaking sense:
``Simulation``, ``run_simulation``, ``run_point`` and friends remain
public, supported, and are what the facade itself calls.  They are
simply no longer the *documented first door* — new code, the examples,
and the quickstart go through ``repro.api``, whose signatures are
pinned by ``tests/test_public_api.py``.

Quickstart::

    from repro import api

    results = api.run(trace="infocom05", protocol="g2g_epidemic", seed=7)
    print(f"delivered {results.success_rate:.0%}")

    points = api.sweep(
        trace="cambridge06", protocol="g2g_epidemic",
        counts=(0, 5, 10), adversary="dropper", workers=4,
    )
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from .crypto.provider import CryptoProvider

from .adversaries.base import Strategy
from .adversaries.factory import mixed_population, strategy_population
from .core.blacklist import BlacklistService
from .experiments.cache import RunCache
from .experiments.catalog import protocol as catalog_protocol
from .experiments.parallel import ExecutionOptions, RunReport
from .experiments.runner import PointResult, run_series
from .experiments.setting import (
    ReplicationPlan,
    evaluation_community,
    evaluation_trace,
)
from .protocols.base import CommunityOracle, ForwardingProtocol
from .sim.config import SimulationConfig, config_for
from .sim.engine import Simulation
from .sim.results import SimulationResults
from .telemetry.export import TelemetryCollector
from .traces.stream import ContactSource
from .traces.trace import ContactTrace, NodeId

#: What ``run``/``sweep`` accept as a telemetry sink: a directory path
#: (per-run JSONL records are appended under it) or a caller-owned
#: :class:`TelemetryCollector`.
TelemetrySink = Union[str, "os.PathLike[str]", TelemetryCollector]


def _resolve_telemetry(
    telemetry: Optional[TelemetrySink], filename: str
) -> Tuple[Optional[TelemetryCollector], Optional[str]]:
    """Normalize a telemetry sink into (collector, export path)."""
    if telemetry is None:
        return None, None
    if isinstance(telemetry, TelemetryCollector):
        return telemetry, None
    directory = os.fspath(telemetry)
    return TelemetryCollector(), os.path.join(directory, filename)


def run(
    trace: Union[str, ContactTrace, ContactSource],
    protocol: Union[str, ForwardingProtocol],
    config: Union[None, SimulationConfig, Mapping[str, object]] = None,
    *,
    seed: Optional[int] = None,
    adversary: Optional[str] = None,
    adversary_count: int = 0,
    mix: Optional[Mapping[str, float]] = None,
    churn: Optional[Sequence[Tuple[float, float, Optional[float]]]] = None,
    energy_budgets: Optional[Sequence[object]] = None,
    strategies: Optional[Dict[NodeId, Strategy]] = None,
    community: Optional[CommunityOracle] = None,
    blacklist: Optional[BlacklistService] = None,
    telemetry: Optional[TelemetrySink] = None,
    provider: Union[None, str, "CryptoProvider"] = None,
) -> SimulationResults:
    """Execute one simulation run — the blessed single-run entry point.

    Args:
        trace: an evaluation trace name ("infocom05" / "cambridge06"),
            resolved to the paper's windowed setting with its detected
            communities, a ready :class:`ContactTrace` used as-is, or
            a streaming :class:`~repro.traces.ContactSource` (e.g. a
            :class:`~repro.traces.SyntheticStreamSource` mega-trace)
            fed to the engine chunk by chunk.
        protocol: a catalog name (``repro.experiments.PROTOCOLS``) or
            a fresh protocol instance (never reuse one across runs).
        config: a full :class:`SimulationConfig`, a mapping of config
            overrides, or None for the paper defaults.  For named
            traces, overrides apply on top of the trace/family preset
            (:func:`repro.sim.config_for`).
        seed: master seed; overrides the one carried by ``config``.
        adversary: adversary kind ("dropper" / "liar" / "cheater",
            with-outsiders variants included) planted over the node
            population; mutually exclusive with ``strategies``.
        adversary_count: how many nodes deviate.
        mix: mixed adversary population as kind -> population
            fraction (see :func:`repro.adversaries.mixed_population`);
            mutually exclusive with ``adversary`` and ``strategies``.
        churn: churn cohorts as ``(fraction, leave_time,
            rejoin_time)`` tuples (``rejoin_time`` None = gone for
            good), expanded deterministically per seed.
        energy_budgets: per-node energy-budget spec —
            ``("constant", joules)`` or ``("uniform", lo, hi)``.
        strategies: explicit per-node strategy map (advanced).
        community: community oracle; defaults to the detected one for
            named traces and to None for caller-supplied traces.
        blacklist: PoM propagation service override.
        telemetry: a directory (the run's JSONL record is appended to
            ``<dir>/runs.jsonl``) or a :class:`TelemetryCollector`.
        provider: crypto provider tier for Give2Get protocols — a
            tier name from :data:`repro.crypto.TIER_NAMES` ("real" /
            "simulated" / "accounting") or a ready
            :class:`~repro.crypto.CryptoProvider` instance.  None
            keeps the protocol's own default (simulated).  Raises
            :class:`ValueError` for protocols that take no provider
            (e.g. plain epidemic).

    Returns:
        The run's :class:`SimulationResults`, with the telemetry
        snapshot attached as ``results.telemetry``.
    """
    trace_obj: Union[ContactTrace, ContactSource]
    if isinstance(trace, str):
        trace_obj = evaluation_trace(trace)
        if community is None:
            community = evaluation_community(trace)
    else:
        trace_obj = trace
    # Node universe for population/scenario expansion: a streaming
    # source declares it (possibly as a range); a trace enumerates it.
    universe = (
        trace_obj.universe
        if isinstance(trace_obj, ContactSource)
        else trace_obj.nodes
    )

    if isinstance(protocol, str):
        family, factory = catalog_protocol(protocol)
        protocol_obj = factory()
        assert isinstance(protocol_obj, ForwardingProtocol)
    else:
        protocol_obj = protocol
        family = protocol_obj.family

    if provider is not None:
        use_provider = getattr(protocol_obj, "use_provider", None)
        if use_provider is None:
            raise ValueError(
                f"protocol {protocol_obj.name!r} does not take a crypto "
                "provider; the provider= argument only applies to the "
                "Give2Get families"
            )
        use_provider(provider)

    if isinstance(config, SimulationConfig):
        run_config = config
        if seed is not None:
            run_config = replace(run_config, seed=seed)
    else:
        overrides = dict(config) if config else {}
        if seed is not None:
            overrides["seed"] = seed
        if isinstance(trace, str):
            run_config = config_for(trace, family, **overrides)
        else:
            run_config = SimulationConfig(**overrides)  # type: ignore[arg-type]

    if mix is not None:
        if strategies is not None or adversary is not None:
            raise ValueError(
                "pass exactly one of mix, adversary/adversary_count,"
                " or strategies"
            )
        strategies, _ = mixed_population(
            universe,
            dict(mix),
            seed=run_config.seed,
            community=community,
        )
    elif adversary is not None and adversary_count > 0:
        if strategies is not None:
            raise ValueError(
                "pass either adversary/adversary_count or strategies, not both"
            )
        strategies, _ = strategy_population(
            universe,
            adversary,
            adversary_count,
            seed=run_config.seed,
            community=community,
        )

    churn_schedule = None
    if churn:
        from .scenarios.spec import churn_events_for

        churn_schedule = churn_events_for(
            universe, list(churn), seed=run_config.seed
        )
    budgets = None
    if energy_budgets:
        from .scenarios.spec import energy_budgets_for

        budgets = energy_budgets_for(
            universe, tuple(energy_budgets), seed=run_config.seed
        )

    results = Simulation(
        trace_obj,
        protocol_obj,
        run_config,
        strategies=strategies,
        community=community,
        blacklist=blacklist,
        churn=churn_schedule,
        energy_budgets=budgets,
    ).run()

    collector, export_path = _resolve_telemetry(telemetry, "runs.jsonl")
    if collector is not None:
        collector.add(results)
        if export_path is not None:
            collector.write_jsonl(export_path)
    return results


def sweep(
    trace: str,
    protocol: str,
    counts: Sequence[int],
    *,
    adversary: str = "dropper",
    seeds: Sequence[int] = (1, 2, 3),
    config_overrides: Optional[Mapping[str, object]] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    report: Optional[RunReport] = None,
    telemetry: Optional[TelemetrySink] = None,
) -> List[Tuple[int, PointResult]]:
    """Run an adversary-count sweep — the blessed experiment entry point.

    Wraps :func:`repro.experiments.run_series`: the full
    (count × seed) matrix executes as one flat batch, optionally over a
    process pool and against an on-disk run cache, and each grid
    point's runs average into one :class:`PointResult` whose
    ``telemetry`` is the deterministically merged snapshot of its runs.

    Args:
        trace: evaluation trace name ("infocom05" / "cambridge06").
        protocol: catalog protocol name.
        counts: adversary counts to sweep (0 runs all-honest).
        adversary: adversary kind planted at non-zero counts.
        seeds: replication seeds averaged into each point.
        config_overrides: optional :class:`SimulationConfig` overrides.
        workers: process count (1 = sequential, the exact same output).
        cache_dir: run-cache directory; None disables caching.  Note
            that cache-hit runs carry no telemetry snapshot.
        report: optional :class:`RunReport` accumulator.
        telemetry: a directory (per-run records append to
            ``<dir>/sweep.jsonl``) or a :class:`TelemetryCollector`.

    Returns:
        ``(count, PointResult)`` pairs in the order of ``counts``.
    """
    family, factory = catalog_protocol(protocol)
    collector, export_path = _resolve_telemetry(telemetry, "sweep.jsonl")
    options = ExecutionOptions(
        workers=workers,
        cache=RunCache(cache_dir) if cache_dir is not None else None,
        report=report,
        telemetry=collector,
    )
    points = run_series(
        trace,
        family,
        factory,
        counts,
        adversary,
        plan=ReplicationPlan(seeds=tuple(seeds)),
        config_overrides=dict(config_overrides) if config_overrides else None,
        options=options,
        protocol_name=protocol,
    )
    if collector is not None and export_path is not None:
        collector.write_jsonl(export_path)
    return points


__all__ = ["TelemetrySink", "run", "sweep"]
