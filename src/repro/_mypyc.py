"""Compiled-build compatibility shim.

The optional mypyc build (``REPRO_FAST=1 pip install .[fast]``, see
setup.py) compiles classes to *native* classes by default: no
``__dict__``, no ``object.__setattr__``, declared attributes only.
The wire artifacts deliberately use both — the one-shot payload memo
stores the first encoding in ``__dict__`` and the signing helpers
backfill signature slots on frozen dataclasses — so those classes opt
out with ``@mypyc_attr(native_class=False)``: the module's hot free
functions still compile, the classes keep exact CPython semantics.

``mypyc_attr`` lives in ``mypy_extensions``, which ships with mypy but
is not a runtime dependency of the pure-Python install; fall back to a
no-op decorator so plain installs never import it.
"""

from typing import Any, Callable, TypeVar

_T = TypeVar("_T")

try:
    from mypy_extensions import mypyc_attr
except ImportError:  # pure-Python install without mypy: inert

    def mypyc_attr(*attrs: str, **kwargs: Any) -> Callable[[_T], _T]:
        def decorator(obj: _T) -> _T:
            return obj

        return decorator


__all__ = ["mypyc_attr"]
